package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

func get(t *testing.T, srv *Server, path string) (*http.Response, []byte) {
	t.Helper()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [1 << 16]byte
	n, _ := resp.Body.Read(buf[:])
	return resp, buf[:n]
}

func TestModelsEndpoint(t *testing.T) {
	srv := New()
	resp, body := get(t, srv, "/models")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var models []ModelInfo
	if err := json.Unmarshal(body, &models); err != nil {
		t.Fatal(err)
	}
	if len(models) != 12 {
		t.Fatalf("got %d models", len(models))
	}
}

func TestDevicesAndSchemesEndpoints(t *testing.T) {
	srv := New()
	_, body := get(t, srv, "/devices")
	var devs []string
	if err := json.Unmarshal(body, &devs); err != nil {
		t.Fatal(err)
	}
	if len(devs) != 3 {
		t.Fatalf("devices = %v", devs)
	}
	_, body = get(t, srv, "/schemes")
	var schemes []string
	if err := json.Unmarshal(body, &schemes); err != nil {
		t.Fatal(err)
	}
	if len(schemes) != 6 {
		t.Fatalf("schemes = %v", schemes)
	}
}

func TestColdStartEndpoint(t *testing.T) {
	srv := New()
	resp, body := get(t, srv, "/coldstart?model=alex&scheme=PaSK&compare=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ColdStartResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.TotalMs <= 0 || out.SpeedupVsBase <= 1 {
		t.Fatalf("response implausible: %+v", out)
	}
	if out.ReuseHits == 0 || out.Milestone == 0 {
		t.Fatalf("PASK statistics missing: %+v", out)
	}
	var sum float64
	for _, v := range out.BreakdownMs {
		sum += v
	}
	if sum < out.TotalMs*0.999 || sum > out.TotalMs*1.001 {
		t.Fatalf("breakdown (%v) does not sum to total (%v)", sum, out.TotalMs)
	}
}

func TestColdStartDefaultsAndCache(t *testing.T) {
	srv := New()
	resp1, body1 := get(t, srv, "/coldstart?model=alex")
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, body1)
	}
	// The second call reuses the cached setup and must be identical
	// (deterministic virtual time).
	_, body2 := get(t, srv, "/coldstart?model=alex")
	if string(body1) != string(body2) {
		t.Fatal("repeated identical queries differ")
	}
}

func TestServeEndpoint(t *testing.T) {
	srv := New()
	resp, body := get(t, srv, "/serve?model=alex&requests=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ServeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Served != 5 || out.Failed != 0 || out.P50Ms <= 0 {
		t.Fatalf("response implausible: %+v", out)
	}
}

func TestServeFaultedResilient(t *testing.T) {
	srv := New()
	path := "/serve?model=alex&requests=10&retries=2&continue=1&faults=" +
		url.QueryEscape("transient=0.2,seed=4")
	resp, body := get(t, srv, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ServeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Served+out.Failed != 10 {
		t.Fatalf("accounting broken: %+v", out)
	}
}

// TestServeStatusMapping checks that typed serving failures pick the right
// HTTP status instead of a blanket 500.
func TestServeStatusMapping(t *testing.T) {
	srv := New()
	// A microsecond-scale deadline no request can meet: gateway timeout.
	resp, body := get(t, srv, "/serve?model=alex&requests=3&deadline_ms=0.001")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline miss: status %d, want 504: %s", resp.StatusCode, body)
	}
	// Every non-protected object corrupt under a fail-fast Baseline with
	// retries but no ladder: the instance crashes, service unavailable.
	path := "/serve?model=alex&requests=3&scheme=Baseline&retries=1&faults=" +
		url.QueryEscape("permanent=1,seed=1")
	resp, body = get(t, srv, path)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("instance crash: status %d, want 503: %s", resp.StatusCode, body)
	}
}

func TestServeValidation(t *testing.T) {
	srv := New()
	cases := []string{
		"/serve",                          // missing model
		"/serve?model=alex&requests=0",    // bad requests
		"/serve?model=alex&scheme=Turbo",  // unknown scheme
		"/serve?model=alex&retries=-1",    // bad retries
		"/serve?model=alex&deadline_ms=x", // bad deadline
		"/serve?model=alex&faults=" + url.QueryEscape("transient=2"), // bad rate
		"/serve?model=alex&faults=" + url.QueryEscape("warp=0.5"),    // unknown key
	}
	for _, path := range cases {
		resp, _ := get(t, srv, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestColdStartValidation(t *testing.T) {
	srv := New()
	cases := []string{
		"/coldstart",                         // missing model
		"/coldstart?model=bert",              // unknown model
		"/coldstart?model=alex&scheme=Turbo", // unknown scheme
		"/coldstart?model=alex&device=H100",  // unknown device
		"/coldstart?model=alex&batch=0",      // bad batch
		"/coldstart?model=alex&batch=banana", // non-numeric batch
	}
	for _, path := range cases {
		resp, _ := get(t, srv, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestMultitenantEndpoint(t *testing.T) {
	srv := New()
	resp, body := get(t, srv, "/multitenant?requests=2&interval_ms=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mt MultitenantResponse
	if err := json.Unmarshal(body, &mt); err != nil {
		t.Fatal(err)
	}
	if len(mt.Tenants) != 2 {
		t.Fatalf("tenants = %+v", mt.Tenants)
	}
	if !mt.StoreUntouched {
		t.Fatal("store mutated across arms")
	}
	if mt.SharedLoads >= mt.IsolatedLoads {
		t.Fatalf("shared loads %d not below isolated %d", mt.SharedLoads, mt.IsolatedLoads)
	}
	second := mt.Tenants[1]
	if second.SharedColdMs >= second.IsolatedColdMs {
		t.Fatalf("second tenant %s cold start not improved: shared %.2fms vs isolated %.2fms",
			second.Model, second.SharedColdMs, second.IsolatedColdMs)
	}
	if len(mt.TenantLoads) == 0 {
		t.Fatal("no per-tenant load attribution")
	}
}

func TestMultitenantValidation(t *testing.T) {
	srv := New()
	for _, path := range []string{
		"/multitenant?device=nope",
		"/multitenant?batch=0",
		"/multitenant?requests=0",
		"/multitenant?interval_ms=-1",
	} {
		resp, _ := get(t, srv, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}
