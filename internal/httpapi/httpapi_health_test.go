package httpapi

import (
	"encoding/json"
	"net/http"
	"testing"
)

// GET /v1/health answers before any failover run (empty GPU list, status
// ok) and, after one, carries the per-GPU final health states of the
// monitored fleet — the dead victim included.
func TestHealthEndpoint(t *testing.T) {
	srv := New()

	resp, data := getFull(t, srv, "/v1/health")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var hr HealthResponse
	if err := json.Unmarshal(data, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Schema != 1 || hr.Status != "ok" {
		t.Fatalf("envelope {schema:%d, status:%q}, want {1, ok}", hr.Schema, hr.Status)
	}
	if len(hr.GPUs) != 0 {
		t.Fatalf("pre-run health lists %d GPUs, want none", len(hr.GPUs))
	}

	if resp, data := postJSON(t, srv, "/v1/experiments/failover", `{"quick": true}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("failover run: status %d: %s", resp.StatusCode, data)
	}

	resp, data = getFull(t, srv, "/v1/health")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	hr = HealthResponse{}
	if err := json.Unmarshal(data, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" {
		t.Fatalf("status %q, want ok", hr.Status)
	}
	if len(hr.GPUs) != 4 {
		t.Fatalf("health lists %d GPUs, want the 4-GPU fleet: %s", len(hr.GPUs), data)
	}
	states := map[string]int{}
	for i, g := range hr.GPUs {
		if g.GPU != i {
			t.Errorf("gpu %d listed under index %d", i, g.GPU)
		}
		if g.Driver == "" || g.Arch == "" {
			t.Errorf("gpu %d missing identity: %+v", i, g)
		}
		states[g.State]++
	}
	if states["dead"] != 1 || states["healthy"] != 3 {
		t.Errorf("final states %v, want one dead victim and three healthy survivors", states)
	}
}
