package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestV1CacheImagesLifecycle walks the full API surface: empty list, attach
// before any image exists (degrades cold, reports "no_image"), build +
// publish, attach hit, cross-device attach rejection, and the /metrics
// counters that tally each rung of the ladder.
func TestV1CacheImagesLifecycle(t *testing.T) {
	srv := New()

	// Empty store: list succeeds with no images and zeroed stats.
	resp, body := getFull(t, srv, "/v1/cacheimages")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d: %s", resp.StatusCode, body)
	}
	var list CacheImagesResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Images) != 0 || list.Stats.Published != 0 {
		t.Fatalf("fresh store not empty: %+v", list)
	}

	// Attach with nothing published: the run degrades to a plain cold start
	// and reports the typed outcome instead of failing.
	resp, body = postJSON(t, srv, "/v1/coldstart", `{"model":"alex","attach_image":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coldstart pre-build: status %d: %s", resp.StatusCode, body)
	}
	var cs ColdStartResponse
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.ImageAttach != "no_image" || cs.ImageID != "" {
		t.Fatalf("pre-build attach outcome %q / id %q, want no_image / empty", cs.ImageAttach, cs.ImageID)
	}
	if cs.TotalMs <= 0 {
		t.Fatalf("degraded run did not complete: %+v", cs)
	}

	// Build and publish an image for (alex, MI100).
	resp, body = postJSON(t, srv, "/v1/cacheimages", `{"model":"alex"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build: status %d: %s", resp.StatusCode, body)
	}
	var built CacheImageBuildResponse
	if err := json.Unmarshal(body, &built); err != nil {
		t.Fatal(err)
	}
	if built.ID == "" || built.Bytes == 0 || built.Objects == 0 || built.Entries == 0 {
		t.Fatalf("empty build reply: %+v", built)
	}
	if built.Model != "alex" || built.Device != "MI100" || built.Batch != 1 {
		t.Fatalf("build defaults wrong: %+v", built)
	}
	if built.StoreFingerprint == "" {
		t.Fatalf("missing store fingerprint: %+v", built)
	}

	// The image shows up in the list with its content address and size.
	_, body = getFull(t, srv, "/v1/cacheimages")
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Images) != 1 || list.Images[0].ID != built.ID || list.Images[0].Bytes != int64(built.Bytes) {
		t.Fatalf("list after build: %+v, want image %s (%d bytes)", list, built.ID, built.Bytes)
	}
	if list.Stats.Published != 1 {
		t.Fatalf("published count %d, want 1", list.Stats.Published)
	}

	// Attach on the matching device replays the image's manifest.
	resp, body = postJSON(t, srv, "/v1/coldstart", `{"model":"alex","attach_image":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coldstart post-build: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.ImageAttach != "ok" || cs.ImageID != built.ID {
		t.Fatalf("attach outcome %q / id %q, want ok / %s", cs.ImageAttach, cs.ImageID, built.ID)
	}

	// A different device walks the ladder to a typed profile rejection and
	// still completes cold.
	resp, body = postJSON(t, srv, "/v1/coldstart", `{"model":"alex","device":"A100","attach_image":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cross-device coldstart: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.ImageAttach != "image_profile_mismatch" {
		t.Fatalf("cross-device attach outcome %q, want image_profile_mismatch", cs.ImageAttach)
	}
	if cs.TotalMs <= 0 {
		t.Fatalf("rejected attach must still serve cold: %+v", cs)
	}

	// Every rung taken above is visible in the store stats and /metrics.
	_, body = getFull(t, srv, "/v1/cacheimages")
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	st := list.Stats
	if st.AttachOK != 1 || st.NoImage != 1 || st.RejectedProfile != 1 {
		t.Fatalf("ladder stats %+v, want attach_ok=1 no_image=1 rejected_profile=1", st)
	}
	_, metrics := getFull(t, srv, "/metrics")
	for _, want := range []string{
		"pask_cacheimg_published_total 1",
		"pask_cacheimg_attach_ok_total 1",
		"pask_cacheimg_rejected_profile_total 1",
		"pask_cacheimg_no_image_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestV1CacheImagesBuildValidation(t *testing.T) {
	srv := New()
	cases := []struct {
		body   string
		status int
	}{
		{`{}`, http.StatusBadRequest},
		{`{"model":"nope"}`, http.StatusBadRequest},
		{`{"model":"alex","device":"H100"}`, http.StatusBadRequest},
		{`{"model":"alex","batch":-1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, srv, "/v1/cacheimages", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.body, resp.StatusCode, tc.status)
			continue
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
			t.Errorf("%s: body %q lacks the error envelope", tc.body, body)
		}
	}
}
