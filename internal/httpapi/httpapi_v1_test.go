package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pask/internal/serving"
	"pask/internal/trace"
	"pask/internal/warmup"
)

// postJSON POSTs a JSON body and returns the response plus full body.
func postJSON(t *testing.T, srv *Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// getFull GETs a path and returns the response plus full body (the legacy
// helper reads a single chunk; traces can be larger).
func getFull(t *testing.T, srv *Server, path string) (*http.Response, []byte) {
	t.Helper()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestV1ErrorEnvelope(t *testing.T) {
	srv := New()
	cases := []struct {
		body   string
		status int
		code   string
	}{
		{`{"model":"bert"}`, http.StatusBadRequest, "bad_request"},
		{`{}`, http.StatusBadRequest, "bad_request"},
		{`{"model":"alex","scheme":"Turbo"}`, http.StatusBadRequest, "bad_request"},
		{`{"model":"alex","batch":-3}`, http.StatusBadRequest, "bad_request"},
		{`not json`, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, srv, "/v1/coldstart", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.body, resp.StatusCode, tc.status)
			continue
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: body %q not an error envelope: %v", tc.body, body, err)
			continue
		}
		if env.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.body, env.Error.Code, tc.code)
		}
		if env.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.body)
		}
	}
}

func TestLegacyErrorsUseEnvelopeToo(t *testing.T) {
	srv := New()
	resp, body := get(t, srv, "/coldstart?model=bert")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		t.Fatalf("legacy error body %q lacks the envelope", body)
	}
}

func TestDeprecationAliases(t *testing.T) {
	srv := New()
	for _, path := range []string{"/models", "/devices", "/schemes"} {
		resp, _ := getFull(t, srv, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Deprecation"); got != "true" {
			t.Errorf("%s: Deprecation header %q, want \"true\"", path, got)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1"+path) ||
			!strings.Contains(link, "successor-version") {
			t.Errorf("%s: Link header %q does not name the successor", path, link)
		}
	}
	// v1 routes carry no deprecation marker and serve the same body.
	legacyResp, legacyBody := getFull(t, srv, "/models")
	v1Resp, v1Body := getFull(t, srv, "/v1/models")
	if v1Resp.Header.Get("Deprecation") != "" {
		t.Error("/v1/models is marked deprecated")
	}
	if legacyResp.StatusCode != v1Resp.StatusCode || string(legacyBody) != string(v1Body) {
		t.Error("alias and /v1 answers differ")
	}
}

func TestV1ColdStartRecordsTrace(t *testing.T) {
	srv := New()
	resp, body := postJSON(t, srv, "/v1/coldstart", `{"model":"alex","scheme":"PaSK"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cs ColdStartResponse
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.RunID == "" || cs.TraceURL == "" {
		t.Fatalf("missing run id / trace url: %+v", cs)
	}
	if cs.TotalMs <= 0 || cs.Loads <= 0 {
		t.Fatalf("implausible report: %+v", cs)
	}

	traceResp, traceBody := getFull(t, srv, cs.TraceURL)
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d", traceResp.StatusCode)
	}
	sum, err := trace.ValidateChrome(traceBody)
	if err != nil {
		t.Fatalf("served trace invalid: %v", err)
	}
	if len(sum.Tracks) < 4 {
		t.Fatalf("served trace has tracks %v, want >= 4", sum.Tracks)
	}

	resp404, body404 := getFull(t, srv, "/v1/runs/run-999/trace")
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: status %d", resp404.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(body404, &env); err != nil || env.Error.Code != "not_found" {
		t.Fatalf("unknown-run body %q, want not_found envelope", body404)
	}
}

func TestV1ServeEndpoint(t *testing.T) {
	srv := New()
	resp, body := postJSON(t, srv, "/v1/serve", `{"model":"alex","requests":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ServeResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Served != 5 || sr.Failed != 0 {
		t.Fatalf("served %d / failed %d, want 5 / 0", sr.Served, sr.Failed)
	}
	if sr.RunID == "" || sr.TraceURL == "" {
		t.Fatalf("missing run id / trace url: %+v", sr)
	}
	traceResp, traceBody := getFull(t, srv, sr.TraceURL)
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d", traceResp.StatusCode)
	}
	if _, err := trace.ValidateChrome(traceBody); err != nil {
		t.Fatalf("served trace invalid: %v", err)
	}
}

func TestV1MultitenantEndpoint(t *testing.T) {
	srv := New()
	resp, body := postJSON(t, srv, "/v1/multitenant", `{"requests":2,"interval_ms":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mt MultitenantResponse
	if err := json.Unmarshal(body, &mt); err != nil {
		t.Fatal(err)
	}
	if len(mt.Tenants) != 2 || !mt.StoreUntouched {
		t.Fatalf("unexpected reply: %+v", mt)
	}
}

func TestV1WarmupProfileEndpoint(t *testing.T) {
	srv := New()
	// No profile recorded yet: 404 with the uniform envelope.
	resp, body := getFull(t, srv, "/v1/warmup/alex")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("before recording: status %d", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "not_found" {
		t.Fatalf("404 body %q, want not_found envelope", body)
	}

	// Record a profile, fetch it back as a decodable manifest.
	resp, body = postJSON(t, srv, "/v1/coldstart", `{"model":"alex","record_profile":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("record run: %d %s", resp.StatusCode, body)
	}
	var cs ColdStartResponse
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatal(err)
	}
	if !cs.ProfileRecorded {
		t.Fatalf("record run did not record a profile: %+v", cs)
	}
	resp, body = getFull(t, srv, "/v1/warmup/alex")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile fetch: status %d", resp.StatusCode)
	}
	man, err := warmup.Decode(body)
	if err != nil {
		t.Fatalf("served manifest does not decode: %v", err)
	}
	if man.Model != "alex" || len(man.Entries) == 0 {
		t.Fatalf("implausible manifest: %+v", man)
	}

	// A warm run replays the stored profile and reports the accounting.
	resp, body = postJSON(t, srv, "/v1/coldstart", `{"model":"alex","warm":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.WarmupEntries == 0 || cs.WarmupPrefetched == 0 {
		t.Fatalf("warm run did not replay: %+v", cs)
	}
	if cs.WarmupHits == 0 {
		t.Errorf("warm run replayed with no hits: %+v", cs)
	}
}

func TestV1RunTriggersRejectGet(t *testing.T) {
	srv := New()
	for _, path := range []string{"/v1/coldstart", "/v1/serve", "/v1/multitenant"} {
		resp, _ := getFull(t, srv, path+"?model=alex")
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := New()
	// Before any run: the endpoint serves, with zero totals.
	resp, body := getFull(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), "pask_server_runs_total 0") {
		t.Fatalf("empty-server metrics missing zero run count:\n%s", body)
	}

	if resp, body := postJSON(t, srv, "/v1/coldstart", `{"model":"alex"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("coldstart: %d %s", resp.StatusCode, body)
	}
	_, body = getFull(t, srv, "/metrics")
	out := string(body)
	for _, want := range []string{
		"pask_server_runs_total 1",
		`pask_run_loads{scheme="PaSK",model="alex"}`,
		`pask_run_reuse_hits{scheme="PaSK",model="alex"}`,
		`pask_run_loaded_bytes{scheme="PaSK",model="alex"}`,
		"pask_hip_resident_bytes",
		"# TYPE pask_run_loads gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, out)
		}
	}
}

func TestV1OverloadEndpoint(t *testing.T) {
	srv := New()
	resp, body := postJSON(t, srv, "/v1/overload", `{"model":"res","trace":"burst","quick":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var or OverloadResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if len(or.Cells) != 3 {
		t.Fatalf("got %d cells, want all three arms: %s", len(or.Cells), body)
	}
	byArm := map[string]bool{}
	for _, c := range or.Cells {
		byArm[c.Arm] = true
		if c.Requests == 0 {
			t.Fatalf("cell %q has zero requests", c.Arm)
		}
	}
	if !byArm["none"] || !byArm["shed"] || !byArm["brownout"] {
		t.Fatalf("missing arms: %v", byArm)
	}
	if or.Seed == 0 || or.Device == "" {
		t.Fatalf("effective config not reported: %+v", or)
	}
	if or.RunID == "" || or.TraceURL == "" {
		t.Fatalf("missing run id / trace url: %+v", or)
	}
	traceResp, traceBody := getFull(t, srv, or.TraceURL)
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d", traceResp.StatusCode)
	}
	if _, err := trace.ValidateChrome(traceBody); err != nil {
		t.Fatalf("overload trace invalid: %v", err)
	}
}

func TestV1OverloadSingleArmAndValidation(t *testing.T) {
	srv := New()
	resp, body := postJSON(t, srv, "/v1/overload", `{"model":"res","arm":"shed","quick":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var or OverloadResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if len(or.Cells) != 1 || or.Cells[0].Arm != "shed" {
		t.Fatalf("unexpected cells: %s", body)
	}
	if or.Trace != "burst" {
		t.Fatalf("default trace = %q, want burst", or.Trace)
	}

	for _, bad := range []string{
		`{"trace":"burst"}`,                // missing model
		`{"model":"res","arm":"panic"}`,    // unknown arm
		`{"model":"res","trace":"square"}`, // unknown trace kind
		`{"model":"res","burst":99999}`,    // burst over cap
	} {
		resp, body := postJSON(t, srv, "/v1/overload", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d (%s), want 400", bad, resp.StatusCode, body)
		}
	}
}

func TestOverloadErrorMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{serving.ErrShed, http.StatusTooManyRequests, "shed"},
		{serving.ErrBreakerOpen, http.StatusServiceUnavailable, "breaker_open"},
	}
	for _, tc := range cases {
		if got := statusFromErr(tc.err); got != tc.status {
			t.Errorf("statusFromErr(%v) = %d, want %d", tc.err, got, tc.status)
		}
		if got := codeFromErr(tc.err, tc.status); got != tc.code {
			t.Errorf("codeFromErr(%v) = %q, want %q", tc.err, got, tc.code)
		}
	}
}
