package httpapi

import (
	"fmt"
	"net/http"

	"pask/internal/experiments"
	"pask/internal/onnx/zoo"
	"pask/internal/serving"
	"pask/internal/trace"
)

// ExperimentInfo is one GET /v1/experiments menu entry.
type ExperimentInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	InAll       bool   `json:"in_all"`
	Bench       bool   `json:"bench"`
}

// handleExperimentsList serves the registered experiment menu.
func (s *Server) handleExperimentsList(w http.ResponseWriter, r *http.Request) {
	out := make([]ExperimentInfo, 0)
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{
			Name: e.Name, Description: e.Description, InAll: e.InAll, Bench: e.Bench,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// ExperimentRequest is the POST /v1/experiments/{name} body. All fields
// are optional; an empty (or absent) body runs the experiment with its
// defaults at full size.
type ExperimentRequest struct {
	// Quick shrinks the experiment to its CI smoke size.
	Quick bool `json:"quick,omitempty"`
	// Models restricts the model selection where the experiment honors it.
	Models []string `json:"models,omitempty"`
	// Batches restricts the batch sweep where the experiment honors it.
	Batches []int `json:"batches,omitempty"`
}

// ExperimentResponse is the versioned result envelope ({"schema": 1,
// "experiment": ..., "result": ...} — the same shape paskbench -out
// writes) plus the run's trace handle.
type ExperimentResponse struct {
	Schema     int                 `json:"schema"`
	Experiment string              `json:"experiment"`
	Result     *experiments.Result `json:"result"`

	RunID    string `json:"run_id,omitempty"`
	TraceURL string `json:"trace_url,omitempty"`
}

// handleExperimentRunV1 dispatches any registered experiment by name with
// the uniform options: the generic successor to the bespoke per-experiment
// POST routes. The run's timeline is recorded and retrievable at the
// returned trace URL.
func (s *Server) handleExperimentRunV1(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := experiments.Lookup(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q (GET /v1/experiments lists the menu)", name))
		return
	}
	var req ExperimentRequest
	if r.ContentLength != 0 {
		if !decodeBody(w, r, &req) {
			return
		}
	}
	known := make(map[string]bool)
	for _, spec := range zoo.Models() {
		known[spec.Abbr] = true
	}
	for _, m := range req.Models {
		if !known[m] {
			badRequest(w, "unknown model %q", m)
			return
		}
	}
	for _, b := range req.Batches {
		if b < 1 {
			badRequest(w, "bad batch %d", b)
			return
		}
	}
	rec := trace.New()
	res, err := e.Run(experiments.Options{
		Quick: req.Quick, Trace: rec, Models: req.Models, Batches: req.Batches,
	})
	if err != nil {
		writeErr(w, statusFromErr(err), err)
		return
	}
	if fb, ok := res.Bench.(*serving.FailoverBench); ok {
		s.storeHealth(fb)
	}
	resp := &ExperimentResponse{
		Schema: experiments.EnvelopeSchema, Experiment: e.Name, Result: res,
	}
	resp.RunID = s.storeRun(rec, nil)
	resp.TraceURL = "/v1/runs/" + resp.RunID + "/trace"
	writeJSON(w, http.StatusOK, resp)
}
