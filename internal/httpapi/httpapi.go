// Package httpapi exposes the simulated PASK stack as a small JSON web
// service: clients ask "what would a cold start of model X under scheme Y on
// device Z cost?" and receive the full report. It powers cmd/pasksrv and
// gives capacity planners a programmatic what-if interface. The service is
// not part of the paper's artifact — it operationalizes the reproduction's
// experiments (§IV–§V) behind a stable JSON surface.
//
// The API is versioned under /v1. Run-triggering endpoints are POST with a
// JSON body; every v1 run is recorded and its Chrome trace retrievable at
// GET /v1/runs/{id}/trace; GET /metrics serves a Prometheus text snapshot.
// The original unversioned GET endpoints remain as deprecated aliases: they
// answer exactly as before but carry a Deprecation header pointing at their
// /v1 successor. Errors use a uniform envelope
// {"error":{"code":..., "message":...}} mapped from the stack's typed
// sentinels.
//
// Paper anchor: beyond-paper operational surface over the §IV–§V experiments.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"pask/internal/cacheimg"
	"pask/internal/codeobj"
	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/faults"
	"pask/internal/metrics"
	"pask/internal/onnx/zoo"
	"pask/internal/serving"
	"pask/internal/trace"
	"pask/internal/warmup"
)

// maxStoredRuns bounds the per-server run history (trace retention).
const maxStoredRuns = 64

// runRecord is one completed v1 run: its recorder (for the trace endpoint)
// and its report (for /metrics).
type runRecord struct {
	id  string
	rec *trace.Recorder
	rep *metrics.Report
}

// Server is the HTTP handler set. Model setups are compiled once per
// (model, device, batch) and cached; runs themselves are deterministic.
type Server struct {
	mu      sync.Mutex
	setups  map[string]*experiments.ModelSetup
	mux     *http.ServeMux
	runs    map[string]*runRecord
	runIDs  []string // insertion order, oldest first
	nextRun int
	// profiles holds the latest recorded warmup manifest per model abbr,
	// retrievable at GET /v1/warmup/{model} and replayed by "warm" runs.
	profiles map[string]*warmup.Manifest
	// images is the server's node-local cache-image store (DESIGN.md §14),
	// opened lazily in a temp directory on first use. POST /v1/cacheimages
	// records and publishes; coldstart runs with "attach_image": true walk
	// its validation ladder, and every rejection lands in its stats (and in
	// /metrics as pask_cacheimg_*).
	images *cacheimg.Store
	// health is the per-GPU state snapshot served at GET /v1/health,
	// captured from the most recent failover experiment run (empty until
	// one runs).
	health []HealthGPU
}

// New returns a ready-to-serve handler.
func New() *Server {
	s := &Server{
		setups:   make(map[string]*experiments.ModelSetup),
		runs:     make(map[string]*runRecord),
		profiles: make(map[string]*warmup.Manifest),
		mux:      http.NewServeMux(),
	}
	// v1: reads are GET, run triggers are POST with a JSON body.
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("GET /v1/devices", s.handleDevices)
	s.mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	s.mux.HandleFunc("POST /v1/coldstart", s.handleColdStartV1)
	s.mux.HandleFunc("POST /v1/serve", s.handleServeV1)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentsList)
	s.mux.HandleFunc("POST /v1/experiments/{name}", s.handleExperimentRunV1)
	// The bespoke per-experiment POST routes are deprecated aliases of the
	// generic registry endpoint (same Deprecation signal as the legacy GET
	// routes); their request/response shapes are unchanged.
	s.mux.HandleFunc("POST /v1/multitenant", deprecated("/v1/experiments/multitenant", s.handleMultitenantV1))
	s.mux.HandleFunc("POST /v1/overload", deprecated("/v1/experiments/overload", s.handleOverloadV1))
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleRunTrace)
	s.mux.HandleFunc("GET /v1/warmup/{model}", s.handleWarmupProfile)
	s.mux.HandleFunc("GET /v1/cacheimages", s.handleCacheImagesList)
	s.mux.HandleFunc("POST /v1/cacheimages", s.handleCacheImagesBuild)
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Deprecated unversioned aliases: same behavior, plus a Deprecation
	// header naming the successor route.
	s.mux.HandleFunc("GET /models", deprecated("/v1/models", s.handleModels))
	s.mux.HandleFunc("GET /devices", deprecated("/v1/devices", s.handleDevices))
	s.mux.HandleFunc("GET /schemes", deprecated("/v1/schemes", s.handleSchemes))
	s.mux.HandleFunc("GET /coldstart", deprecated("/v1/coldstart", s.handleColdStartLegacy))
	s.mux.HandleFunc("GET /serve", deprecated("/v1/serve", s.handleServeLegacy))
	s.mux.HandleFunc("GET /multitenant", deprecated("/v1/multitenant", s.handleMultitenantLegacy))
	return s
}

// deprecated wraps a legacy handler with the Deprecation header (RFC 9745)
// and a Link to the successor version.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// statusFromErr maps the stack's typed sentinels to HTTP statuses: a shed
// request is 429 (the client should back off and retry), an open breaker is
// 503 (the model is sick — retrying immediately won't help), a missed
// deadline is a gateway timeout, a crashed instance or an exhausted
// degradation ladder is service unavailability, a missing code object is a
// 404, and anything unrecognized stays a blanket 500.
func statusFromErr(err error) int {
	switch {
	case errors.Is(err, serving.ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, serving.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, serving.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, serving.ErrInstanceCrashed), errors.Is(err, core.ErrNoUsableSolution):
		return http.StatusServiceUnavailable
	case errors.Is(err, codeobj.ErrNotFound), errors.Is(err, cacheimg.ErrNoImage):
		return http.StatusNotFound
	case errors.Is(err, cacheimg.ErrProfileMismatch), errors.Is(err, cacheimg.ErrStale):
		return http.StatusConflict
	case errors.Is(err, cacheimg.ErrCorrupt), errors.Is(err, cacheimg.ErrVersion):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// codeFromErr names the error for the machine-readable envelope field.
func codeFromErr(err error, status int) string {
	switch {
	case errors.Is(err, serving.ErrShed):
		return "shed"
	case errors.Is(err, serving.ErrBreakerOpen):
		return "breaker_open"
	case errors.Is(err, serving.ErrDeadlineExceeded):
		return "deadline_exceeded"
	case errors.Is(err, serving.ErrInstanceCrashed):
		return "instance_crashed"
	case errors.Is(err, core.ErrNoUsableSolution):
		return "no_usable_solution"
	case errors.Is(err, codeobj.ErrNotFound):
		return "object_not_found"
	case errors.Is(err, cacheimg.ErrNoImage):
		return "no_image"
	case errors.Is(err, cacheimg.ErrProfileMismatch):
		return "image_profile_mismatch"
	case errors.Is(err, cacheimg.ErrStale):
		return "image_stale"
	case errors.Is(err, cacheimg.ErrCorrupt):
		return "image_corrupt"
	case errors.Is(err, cacheimg.ErrVersion):
		return "image_version"
	}
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	default:
		return "internal"
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// ErrorBody is the machine-readable error in the v1 envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the uniform error response shape.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{
		Code:    codeFromErr(err, status),
		Message: err.Error(),
	}})
}

// badRequest is the 400 shortcut every validator uses.
func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeErr(w, http.StatusBadRequest, fmt.Errorf(format, args...))
}

// decodeBody parses a v1 JSON request body into dst.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(dst); err != nil {
		badRequest(w, "invalid JSON body: %v", err)
		return false
	}
	return true
}

// storeRun registers a completed run and returns its id. Oldest runs are
// dropped past maxStoredRuns.
func (s *Server) storeRun(rec *trace.Recorder, rep *metrics.Report) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextRun++
	id := fmt.Sprintf("run-%d", s.nextRun)
	s.runs[id] = &runRecord{id: id, rec: rec, rep: rep}
	s.runIDs = append(s.runIDs, id)
	for len(s.runIDs) > maxStoredRuns {
		delete(s.runs, s.runIDs[0])
		s.runIDs = s.runIDs[1:]
	}
	return id
}

// snapshotRuns returns the stored runs oldest-first.
func (s *Server) snapshotRuns() []*runRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*runRecord, 0, len(s.runIDs))
	for _, id := range s.runIDs {
		out = append(out, s.runs[id])
	}
	return out
}

// ModelInfo is one /v1/models entry.
type ModelInfo struct {
	Abbr string `json:"abbr"`
	Name string `json:"name"`
	Type string `json:"type"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	var out []ModelInfo
	for _, spec := range zoo.Models() {
		out = append(out, ModelInfo{Abbr: spec.Abbr, Name: spec.Name, Type: spec.Type})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	var out []string
	for _, p := range device.Profiles() {
		out = append(out, p.Name)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	var out []string
	for _, sch := range core.Schemes() {
		out = append(out, string(sch))
	}
	writeJSON(w, http.StatusOK, out)
}

// parseScheme validates a scheme name ("" defaults to PaSK).
func parseScheme(name string) (core.Scheme, error) {
	if name == "" {
		return core.SchemePaSK, nil
	}
	scheme := core.Scheme(name)
	for _, sch := range core.Schemes() {
		if sch == scheme {
			return scheme, nil
		}
	}
	return "", fmt.Errorf("unknown scheme %q", name)
}

// parseDevice validates a device name ("" defaults to MI100).
func parseDevice(name string) (device.Profile, error) {
	if name == "" {
		name = "MI100"
	}
	prof, ok := device.ProfileByName(name)
	if !ok {
		return device.Profile{}, fmt.Errorf("unknown device %q", name)
	}
	return prof, nil
}

// ColdStartRequest is the POST /v1/coldstart body.
type ColdStartRequest struct {
	Model   string `json:"model"`
	Scheme  string `json:"scheme,omitempty"`  // default "PaSK"
	Device  string `json:"device,omitempty"`  // default "MI100"
	Batch   int    `json:"batch,omitempty"`   // default 1
	Compare bool   `json:"compare,omitempty"` // also run Baseline, report speedup

	// RecordProfile captures this run's load order as the model's warmup
	// manifest (GET /v1/warmup/{model}); Warm replays the stored manifest
	// through a prefetcher before the run. A missing manifest is not an
	// error — the run simply starts cold.
	RecordProfile bool `json:"record_profile,omitempty"`
	Warm          bool `json:"warm,omitempty"`

	// AttachImage walks the server's cache-image store down the validation
	// ladder for this (model, device) and replays the attached image's
	// manifest. Any rejection — no image, wrong profile, stale fingerprint,
	// quarantined corruption — degrades the run to a plain cold start; the
	// typed outcome is reported in image_attach and counted in the store's
	// stats (pask_cacheimg_* in /metrics).
	AttachImage bool `json:"attach_image,omitempty"`
}

// ColdStartResponse is the coldstart reply.
type ColdStartResponse struct {
	Model  string `json:"model"`
	Scheme string `json:"scheme"`
	Device string `json:"device"`
	Batch  int    `json:"batch"`

	TotalMs       float64            `json:"total_ms"`
	Utilization   float64            `json:"gpu_utilization"`
	Loads         int                `json:"code_objects_loaded"`
	LoadedBytes   int64              `json:"bytes_loaded"`
	ReuseQueries  int                `json:"reuse_queries"`
	ReuseHits     int                `json:"reuse_hits"`
	SkippedLoads  int                `json:"skipped_loads"`
	Milestone     int                `json:"milestone"`
	BreakdownMs   map[string]float64 `json:"breakdown_ms"`
	SpeedupVsBase float64            `json:"speedup_vs_baseline,omitempty"`

	// Warmup replay accounting (set when the run recorded or replayed a
	// load profile).
	ProfileRecorded  bool `json:"profile_recorded,omitempty"`
	WarmupEntries    int  `json:"warmup_entries,omitempty"`
	WarmupPrefetched int  `json:"warmup_prefetched,omitempty"`
	WarmupHits       int  `json:"warmup_hits,omitempty"`
	WarmupStale      int  `json:"warmup_stale,omitempty"`

	// Cache-image attach outcome (set when attach_image was requested):
	// ImageAttach is "ok" or the typed rejection code, ImageID the content
	// address the run replayed.
	ImageAttach string `json:"image_attach,omitempty"`
	ImageID     string `json:"image_id,omitempty"`

	// RunID and TraceURL are set on v1 runs: the recorded timeline is
	// retrievable at TraceURL until the run ages out of the store.
	RunID    string `json:"run_id,omitempty"`
	TraceURL string `json:"trace_url,omitempty"`
}

// runColdStart executes one validated coldstart request. rec may be nil
// (legacy path: no recording).
func (s *Server) runColdStart(req ColdStartRequest, rec *trace.Recorder) (*ColdStartResponse, *metrics.Report, int, error) {
	if req.Model == "" {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("missing model")
	}
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	prof, err := parseDevice(req.Device)
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	batch := req.Batch
	if batch == 0 {
		batch = 1
	}
	if batch < 1 {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("bad batch %d", batch)
	}
	ms, err := s.setup(req.Model, batch, prof)
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	var man *warmup.Manifest
	if req.Warm {
		s.mu.Lock()
		man = s.profiles[req.Model]
		s.mu.Unlock()
	}
	var imageAttach, imageID string
	if req.AttachImage {
		st, serr := s.imageStore()
		if serr != nil {
			return nil, nil, http.StatusInternalServerError, serr
		}
		if att, aerr := st.Attach(req.Model, prof, ms.Store.Fingerprint()); aerr == nil {
			man = att.Image.Manifest
			imageAttach, imageID = "ok", att.ID
		} else {
			// Degrade to a plain cold start; the ladder's typed outcome is
			// reported, never failed on.
			imageAttach = codeFromErr(aerr, http.StatusNotFound)
		}
	}
	wr, err := ms.RunSchemeWarm(scheme, core.Options{}, rec, man, req.RecordProfile)
	if err != nil {
		return nil, nil, statusFromErr(err), err
	}
	rep := wr.Rep
	resp := toResponse(req.Model, string(scheme), prof.Name, batch, rep)
	resp.ImageAttach, resp.ImageID = imageAttach, imageID
	if req.RecordProfile && wr.Profile != nil {
		s.mu.Lock()
		s.profiles[req.Model] = wr.Profile
		s.mu.Unlock()
		resp.ProfileRecorded = true
	}
	resp.WarmupEntries = rep.WarmupEntries
	resp.WarmupPrefetched = rep.WarmupPrefetched
	resp.WarmupHits = rep.WarmupHits
	resp.WarmupStale = rep.WarmupStale
	if req.Compare && scheme != core.SchemeBaseline {
		base, _, err := ms.RunScheme(core.SchemeBaseline, core.Options{})
		if err != nil {
			return nil, nil, statusFromErr(err), err
		}
		resp.SpeedupVsBase = float64(base.Total) / float64(rep.Total)
	}
	return resp, rep, http.StatusOK, nil
}

// handleColdStartV1 runs a coldstart from a JSON body, records its trace and
// returns the run id.
func (s *Server) handleColdStartV1(w http.ResponseWriter, r *http.Request) {
	var req ColdStartRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rec := trace.New()
	resp, rep, status, err := s.runColdStart(req, rec)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	resp.RunID = s.storeRun(rec, rep)
	resp.TraceURL = "/v1/runs/" + resp.RunID + "/trace"
	writeJSON(w, http.StatusOK, resp)
}

// handleColdStartLegacy runs ?model=res&scheme=PaSK&device=MI100&batch=1 and
// reports the result; with compare=1 it also runs Baseline and reports the
// speedup.
//
// Deprecated: use POST /v1/coldstart.
func (s *Server) handleColdStartLegacy(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := ColdStartRequest{
		Model:   q.Get("model"),
		Scheme:  q.Get("scheme"),
		Device:  q.Get("device"),
		Compare: q.Get("compare") == "1",
	}
	if b := q.Get("batch"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil || v < 1 {
			badRequest(w, "bad batch %q", b)
			return
		}
		req.Batch = v
	}
	resp, _, status, err := s.runColdStart(req, nil)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRunTrace serves a stored run's Chrome trace_event JSON.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	run, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := run.rec.WriteChrome(w); err != nil {
		// Headers are gone; all we can do is drop the connection mid-body.
		return
	}
}

// handleWarmupProfile serves the stored warmup manifest for a model, as
// recorded by the most recent coldstart run with "record_profile": true.
// The payload is the versioned manifest JSON a client can save and feed to
// pask.WithWarmupProfile or paskrun -warmup.
func (s *Server) handleWarmupProfile(w http.ResponseWriter, r *http.Request) {
	model := r.PathValue("model")
	s.mu.Lock()
	man := s.profiles[model]
	s.mu.Unlock()
	if man == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no warmup profile recorded for model %q", model))
		return
	}
	data, err := man.Encode()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// imageStore lazily opens the server's cache-image store in a fresh temp
// directory. The directory lives for the process — images published through
// the API survive across requests, not across server restarts.
func (s *Server) imageStore() (*cacheimg.Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.images != nil {
		return s.images, nil
	}
	dir, err := os.MkdirTemp("", "pask-images-*")
	if err != nil {
		return nil, fmt.Errorf("httpapi: image store: %w", err)
	}
	st, err := cacheimg.Open(dir)
	if err != nil {
		return nil, err
	}
	s.images = st
	return st, nil
}

// CacheImagesResponse is the GET /v1/cacheimages reply.
type CacheImagesResponse struct {
	Images []cacheimg.Info `json:"images"`
	Stats  cacheimg.Stats  `json:"stats"`
}

// handleCacheImagesList serves the published images and the store's
// validation-ladder counters.
func (s *Server) handleCacheImagesList(w http.ResponseWriter, r *http.Request) {
	st, err := s.imageStore()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	infos, err := st.List()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if infos == nil {
		infos = []cacheimg.Info{}
	}
	writeJSON(w, http.StatusOK, CacheImagesResponse{Images: infos, Stats: st.Stats()})
}

// CacheImageBuildRequest is the POST /v1/cacheimages body: record one cold
// run of (model, device, batch) and seal it into a published image.
type CacheImageBuildRequest struct {
	Model  string `json:"model"`
	Device string `json:"device,omitempty"` // default "MI100"
	Batch  int    `json:"batch,omitempty"`  // default 1
}

// CacheImageBuildResponse describes the published image.
type CacheImageBuildResponse struct {
	ID               string `json:"id"`
	Model            string `json:"model"`
	Device           string `json:"device"`
	Batch            int    `json:"batch"`
	Bytes            int    `json:"bytes"`
	Objects          int    `json:"objects"`
	Entries          int    `json:"entries"`
	StoreFingerprint string `json:"store_fingerprint"`
}

// handleCacheImagesBuild records a load profile for the requested (model,
// device, batch), seals it with its code objects into a content-addressed
// image and publishes it atomically to the server's store, where later
// coldstart runs with "attach_image": true can validate and replay it.
func (s *Server) handleCacheImagesBuild(w http.ResponseWriter, r *http.Request) {
	var req CacheImageBuildRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Model == "" {
		badRequest(w, "missing model")
		return
	}
	prof, err := parseDevice(req.Device)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	batch := req.Batch
	if batch == 0 {
		batch = 1
	}
	if batch < 1 {
		badRequest(w, "bad batch %d", batch)
		return
	}
	ms, err := s.setup(req.Model, batch, prof)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	st, err := s.imageStore()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	img, _, err := ms.BuildCacheImage()
	if err != nil {
		writeErr(w, statusFromErr(err), err)
		return
	}
	id, err := st.Publish(img)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	raw, err := img.Encode()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, CacheImageBuildResponse{
		ID: id, Model: img.Model, Device: img.Device, Batch: img.Batch,
		Bytes: len(raw), Objects: len(img.Objects),
		Entries:          len(img.Manifest.Entries),
		StoreFingerprint: fmt.Sprintf("%08x", img.StoreFingerprint),
	})
}

// handleMetrics serves the Prometheus text-format snapshot: per-run headline
// gauges (load counts, reuse hits, bytes) for the latest run of each
// (scheme, model), the latest run's counter series (resident bytes, cache
// size, queue depths) and server totals.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	runs := s.snapshotRuns()
	p := trace.NewPromWriter()
	p.Declare("pask_server_runs_total", "counter", "Runs executed and retained by this server.")
	p.Sample("pask_server_runs_total", float64(len(runs)))
	var loads, hits int
	latest := make(map[string]*runRecord, len(runs))
	for _, run := range runs {
		if run.rep == nil {
			continue
		}
		loads += run.rep.Loads
		hits += run.rep.ReuseHits
		latest[run.rep.Scheme+"/"+run.rep.Model] = run // later wins: runs are oldest-first
	}
	p.Declare("pask_server_loads_total", "counter", "Code objects loaded across all retained runs.")
	p.Sample("pask_server_loads_total", float64(loads))
	p.Declare("pask_server_reuse_hits_total", "counter", "Cache reuse hits across all retained runs.")
	p.Sample("pask_server_reuse_hits_total", float64(hits))
	s.mu.Lock()
	imgStore := s.images
	s.mu.Unlock()
	if imgStore != nil {
		st := imgStore.Stats()
		for _, m := range []struct {
			name string
			help string
			v    int
		}{
			{"pask_cacheimg_published_total", "Cache images atomically published to the store.", st.Published},
			{"pask_cacheimg_attach_ok_total", "Cache-image attaches that passed the validation ladder.", st.AttachOK},
			{"pask_cacheimg_rejected_profile_total", "Attaches rejected for a device-profile mismatch.", st.RejectedProfile},
			{"pask_cacheimg_quarantined_total", "Corrupt or misnamed images quarantined on attach.", st.Quarantined},
			{"pask_cacheimg_stale_total", "Attaches rejected for a stale store fingerprint.", st.Stale},
			{"pask_cacheimg_no_image_total", "Attaches that found no candidate image.", st.NoImage},
			{"pask_cacheimg_torn_cleaned_total", "Torn temp files swept at store open.", st.TornCleaned},
		} {
			p.Declare(m.name, "counter", m.help)
			p.Sample(m.name, float64(m.v))
		}
	}
	keys := make([]string, 0, len(latest))
	for k := range latest {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		trace.ReportMetrics(p, latest[k].rep)
	}
	if n := len(runs); n > 0 {
		runs[n-1].rec.AppendPrometheus(p)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.Flush(w)
}

// ServeRequest is the POST /v1/serve body.
type ServeRequest struct {
	Model    string `json:"model"`
	Scheme   string `json:"scheme,omitempty"`
	Device   string `json:"device,omitempty"`
	Batch    int    `json:"batch,omitempty"`
	Requests int    `json:"requests,omitempty"` // default 20, max 10000

	// Faults is a fault-plan spec (transient=0.1,permanent=0.02,seed=7,...).
	Faults string `json:"faults,omitempty"`
	// Retries/DeadlineMs/ContinueOnError set the fault-tolerance policy.
	Retries         int     `json:"retries,omitempty"`
	DeadlineMs      float64 `json:"deadline_ms,omitempty"`
	ContinueOnError bool    `json:"continue_on_error,omitempty"`
}

// ServeResponse is the serve reply: the outcome of a short request trace
// served under a fault-tolerance policy, optionally against a fault plan.
type ServeResponse struct {
	Model    string `json:"model"`
	Scheme   string `json:"scheme"`
	Device   string `json:"device"`
	Batch    int    `json:"batch"`
	Requests int    `json:"requests"`

	Served         int            `json:"served"`
	Failed         int            `json:"failed"`
	Retries        int            `json:"retries"`
	Crashes        int            `json:"crashes"`
	Recovered      int            `json:"recovered"`
	DeadlineMisses int            `json:"deadline_misses"`
	DegradedLayers int            `json:"degraded_layers"`
	P50Ms          float64        `json:"p50_ms"`
	P99Ms          float64        `json:"p99_ms"`
	Failures       map[int]string `json:"failures,omitempty"`

	RunID    string `json:"run_id,omitempty"`
	TraceURL string `json:"trace_url,omitempty"`
}

// runServe executes one validated serve request. rec may be nil.
func (s *Server) runServe(req ServeRequest, rec *trace.Recorder) (*ServeResponse, int, error) {
	if req.Model == "" {
		return nil, http.StatusBadRequest, fmt.Errorf("missing model")
	}
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	prof, err := parseDevice(req.Device)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	batch := req.Batch
	if batch == 0 {
		batch = 1
	}
	if batch < 1 {
		return nil, http.StatusBadRequest, fmt.Errorf("bad batch %d", batch)
	}
	requests := req.Requests
	if requests == 0 {
		requests = 20
	}
	if requests < 1 || requests > 10000 {
		return nil, http.StatusBadRequest, fmt.Errorf("bad requests %d", requests)
	}
	if req.Retries < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("bad retries %d", req.Retries)
	}
	if req.DeadlineMs < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("bad deadline_ms %v", req.DeadlineMs)
	}

	pol := serving.Policy{Scheme: scheme, Rec: rec}
	var plan faults.Plan
	if req.Faults != "" {
		var leftover map[string]string
		plan, leftover, err = faults.ParsePlan(req.Faults)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		if len(leftover) > 0 {
			return nil, http.StatusBadRequest, fmt.Errorf("unknown fault keys %v", leftover)
		}
		pol.Faults = faults.New(plan)
	}
	pol.FT.MaxRetries = req.Retries
	if req.DeadlineMs > 0 {
		pol.FT.Deadline = time.Duration(req.DeadlineMs * float64(time.Millisecond))
	}
	pol.FT.ContinueOnError = req.ContinueOnError

	ms, err := s.setup(req.Model, batch, prof)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	tr := serving.PoissonTrace(requests, 2*time.Millisecond, plan.Seed)
	stats, err := serving.ServeTrace(ms, pol, tr, 10)
	if err != nil {
		return nil, statusFromErr(err), err
	}
	resp := &ServeResponse{
		Model: req.Model, Scheme: string(scheme), Device: prof.Name, Batch: batch,
		Requests:       requests,
		Served:         len(stats.Latencies),
		Failed:         stats.Failed,
		Retries:        stats.Retries,
		Crashes:        stats.Crashes,
		Recovered:      stats.Recovered,
		DeadlineMisses: stats.DeadlineMisses,
		DegradedLayers: stats.DegradedLayers,
		P50Ms:          float64(stats.Percentile(0.5)) / float64(time.Millisecond),
		P99Ms:          float64(stats.Percentile(0.99)) / float64(time.Millisecond),
	}
	if len(stats.FailedRequests) > 0 {
		resp.Failures = make(map[int]string, len(stats.FailedRequests))
		for idx, ferr := range stats.FailedRequests {
			resp.Failures[idx] = ferr.Error()
		}
	}
	return resp, http.StatusOK, nil
}

// handleServeV1 runs a serving trace from a JSON body, recording its trace.
func (s *Server) handleServeV1(w http.ResponseWriter, r *http.Request) {
	var req ServeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rec := trace.New()
	resp, status, err := s.runServe(req, rec)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	resp.RunID = s.storeRun(rec, nil)
	resp.TraceURL = "/v1/runs/" + resp.RunID + "/trace"
	writeJSON(w, http.StatusOK, resp)
}

// handleServeLegacy runs ?model=res&requests=20 through a serving trace.
// Optional knobs: scheme, device, batch; faults= takes a fault-plan spec
// (transient=0.1,permanent=0.02,seed=7,...); retries=, deadline_ms= and
// continue=1 set the fault-tolerance policy. Without continue=1 a failed
// request aborts the trace and the typed error picks the HTTP status.
//
// Deprecated: use POST /v1/serve.
func (s *Server) handleServeLegacy(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := ServeRequest{
		Model:           q.Get("model"),
		Scheme:          q.Get("scheme"),
		Device:          q.Get("device"),
		Faults:          q.Get("faults"),
		ContinueOnError: q.Get("continue") == "1",
	}
	if b := q.Get("batch"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil || v < 1 {
			badRequest(w, "bad batch %q", b)
			return
		}
		req.Batch = v
	}
	if n := q.Get("requests"); n != "" {
		v, err := strconv.Atoi(n)
		if err != nil || v < 1 || v > 10000 {
			badRequest(w, "bad requests %q", n)
			return
		}
		req.Requests = v
	}
	if v := q.Get("retries"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			badRequest(w, "bad retries %q", v)
			return
		}
		req.Retries = n
	}
	if v := q.Get("deadline_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			badRequest(w, "bad deadline_ms %q", v)
			return
		}
		req.DeadlineMs = f
	}
	resp, status, err := s.runServe(req, nil)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// MultitenantRequest is the POST /v1/multitenant body.
type MultitenantRequest struct {
	Models     []string `json:"models,omitempty"`
	Device     string   `json:"device,omitempty"`
	Batch      int      `json:"batch,omitempty"`
	Requests   int      `json:"requests,omitempty"` // per tenant, max 1000
	IntervalMs float64  `json:"interval_ms,omitempty"`
}

// MultitenantTenant is one model's row in the multitenant reply.
type MultitenantTenant struct {
	Model          string  `json:"model"`
	IsolatedColdMs float64 `json:"isolated_cold_ms"`
	SharedColdMs   float64 `json:"shared_cold_ms"`
}

// MultitenantTenantLoad is one shared-arm tenant's load attribution.
type MultitenantTenantLoad struct {
	Tenant         string  `json:"tenant"`
	Loads          int     `json:"loads"`
	LoadedBytes    int64   `json:"loaded_bytes"`
	LoadMs         float64 `json:"load_ms"`
	SharedHits     int     `json:"shared_hits"`
	CoalescedWaits int     `json:"coalesced_waits"`
}

// MultitenantResponse is the multitenant reply: the isolated-vs-shared
// runtime comparison over an interleaved multi-model trace.
type MultitenantResponse struct {
	Models    []string `json:"models"`
	Device    string   `json:"device"`
	Batch     int      `json:"batch"`
	PerTenant int      `json:"requests_per_tenant"`

	IsolatedLoads  int                     `json:"isolated_module_loads"`
	SharedLoads    int                     `json:"shared_module_loads"`
	StoreUntouched bool                    `json:"store_untouched"`
	Tenants        []MultitenantTenant     `json:"tenants"`
	TenantLoads    []MultitenantTenantLoad `json:"tenant_loads"`
}

// runMultitenant executes one validated multitenant request.
func (s *Server) runMultitenant(req MultitenantRequest) (*MultitenantResponse, int, error) {
	cfg := serving.MultitenantConfig{Models: req.Models}
	if req.Device != "" {
		prof, ok := device.ProfileByName(req.Device)
		if !ok {
			return nil, http.StatusBadRequest, fmt.Errorf("unknown device %q", req.Device)
		}
		cfg.Profile = prof
	}
	if req.Batch != 0 {
		if req.Batch < 1 {
			return nil, http.StatusBadRequest, fmt.Errorf("bad batch %d", req.Batch)
		}
		cfg.Batch = req.Batch
	}
	if req.Requests != 0 {
		if req.Requests < 1 || req.Requests > 1000 {
			return nil, http.StatusBadRequest, fmt.Errorf("bad requests %d", req.Requests)
		}
		cfg.PerTenant = req.Requests
	}
	if req.IntervalMs != 0 {
		if req.IntervalMs < 0 {
			return nil, http.StatusBadRequest, fmt.Errorf("bad interval_ms %v", req.IntervalMs)
		}
		cfg.Interval = time.Duration(req.IntervalMs * float64(time.Millisecond))
	}
	_, res, err := serving.Multitenant(cfg)
	if err != nil {
		return nil, statusFromErr(err), err
	}
	cfg.Fill()
	resp := &MultitenantResponse{
		Models: res.Models, Device: cfg.Profile.Name, Batch: cfg.Batch,
		PerTenant:      cfg.PerTenant,
		IsolatedLoads:  res.Isolated.ModuleLoads,
		SharedLoads:    res.Shared.ModuleLoads,
		StoreUntouched: res.StoreUntouched(),
	}
	for _, m := range res.Models {
		resp.Tenants = append(resp.Tenants, MultitenantTenant{
			Model:          m,
			IsolatedColdMs: float64(serving.FirstCold(res.Isolated, m)) / float64(time.Millisecond),
			SharedColdMs:   float64(serving.FirstCold(res.Shared, m)) / float64(time.Millisecond),
		})
	}
	for _, ts := range res.Shared.TenantLoads {
		if ts.Tenant == "" { // root view holds no tenant activity
			continue
		}
		resp.TenantLoads = append(resp.TenantLoads, MultitenantTenantLoad{
			Tenant: ts.Tenant, Loads: ts.Loads, LoadedBytes: ts.BytesLoaded,
			LoadMs:         float64(ts.LoadTime) / float64(time.Millisecond),
			SharedHits:     ts.SharedHits,
			CoalescedWaits: ts.CoalescedWaits,
		})
	}
	return resp, http.StatusOK, nil
}

// handleMultitenantV1 runs the shared-vs-isolated experiment from a JSON
// body.
func (s *Server) handleMultitenantV1(w http.ResponseWriter, r *http.Request) {
	var req MultitenantRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, status, err := s.runMultitenant(req)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMultitenantLegacy runs ?models=res,vgg&requests=4 through the
// shared-vs-isolated runtime experiment. Optional knobs: device, batch,
// interval_ms.
//
// Deprecated: use POST /v1/multitenant.
func (s *Server) handleMultitenantLegacy(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := MultitenantRequest{Device: q.Get("device")}
	if v := q.Get("models"); v != "" {
		req.Models = strings.Split(v, ",")
	}
	if v := q.Get("batch"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			badRequest(w, "bad batch %q", v)
			return
		}
		req.Batch = n
	}
	if v := q.Get("requests"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 1000 {
			badRequest(w, "bad requests %q", v)
			return
		}
		req.Requests = n
	}
	if v := q.Get("interval_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			badRequest(w, "bad interval_ms %q", v)
			return
		}
		req.IntervalMs = f
	}
	resp, status, err := s.runMultitenant(req)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// OverloadRequest parameterizes POST /v1/overload: one (device, trace-kind)
// cell of the overload-protection experiment, across one arm or all three.
type OverloadRequest struct {
	Model  string `json:"model"`
	Device string `json:"device,omitempty"`
	Batch  int    `json:"batch,omitempty"`
	// Trace is "burst" (default: a simultaneous-arrival spike under a
	// slow-loader storm) or "poisson" (a device reset mid-trace trips the
	// breaker).
	Trace string `json:"trace,omitempty"`
	// Arm is "none", "shed" or "brownout"; empty runs all three for a
	// side-by-side comparison.
	Arm string `json:"arm,omitempty"`
	// Requests sizes the Poisson trace, Burst the spike (defaults 40/36,
	// max 10000 each). Quick shrinks both to CI-smoke size.
	Requests int  `json:"requests,omitempty"`
	Burst    int  `json:"burst,omitempty"`
	Quick    bool `json:"quick,omitempty"`
}

// OverloadResponse is the overload reply: the measured cells, one per arm.
type OverloadResponse struct {
	Model  string `json:"model"`
	Device string `json:"device"`
	Batch  int    `json:"batch"`
	Trace  string `json:"trace"`
	Seed   int64  `json:"seed"`

	Cells []serving.OverloadCell `json:"cells"`

	RunID    string `json:"run_id,omitempty"`
	TraceURL string `json:"trace_url,omitempty"`
}

// runOverload executes one validated overload request. rec may be nil.
func (s *Server) runOverload(req OverloadRequest, rec *trace.Recorder) (*OverloadResponse, int, error) {
	if req.Model == "" {
		return nil, http.StatusBadRequest, fmt.Errorf("missing model")
	}
	prof, err := parseDevice(req.Device)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	batch := req.Batch
	if batch == 0 {
		batch = 1
	}
	if batch < 1 {
		return nil, http.StatusBadRequest, fmt.Errorf("bad batch %d", batch)
	}
	traceKind := req.Trace
	if traceKind == "" {
		traceKind = "burst"
	}
	if traceKind != "burst" && traceKind != "poisson" {
		return nil, http.StatusBadRequest, fmt.Errorf("bad trace %q (want burst or poisson)", req.Trace)
	}
	arms := serving.OverloadArms()
	if req.Arm != "" {
		arm, ok := serving.OverloadArmByName(req.Arm)
		if !ok {
			return nil, http.StatusBadRequest, fmt.Errorf("bad arm %q (want none, shed or brownout)", req.Arm)
		}
		arms = []serving.OverloadArm{arm}
	}
	if req.Requests < 0 || req.Requests > 10000 {
		return nil, http.StatusBadRequest, fmt.Errorf("bad requests %d", req.Requests)
	}
	if req.Burst < 0 || req.Burst > 10000 {
		return nil, http.StatusBadRequest, fmt.Errorf("bad burst %d", req.Burst)
	}

	ms, err := s.setup(req.Model, batch, prof)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	cfg := serving.OverloadConfig{
		Model: req.Model, Batch: batch,
		Requests: req.Requests, Burst: req.Burst, Quick: req.Quick,
	}.Filled()
	cells, err := serving.OverloadRun(ms, cfg, traceKind, arms, rec)
	if err != nil {
		return nil, statusFromErr(err), err
	}
	return &OverloadResponse{
		Model: req.Model, Device: prof.Name, Batch: batch, Trace: traceKind,
		Seed:  cfg.Seed,
		Cells: cells,
	}, http.StatusOK, nil
}

// handleOverloadV1 runs one overload-protection cell from a JSON body,
// recording its trace (breaker state and brownout pressure counters land in
// the timeline when a brownout arm runs).
func (s *Server) handleOverloadV1(w http.ResponseWriter, r *http.Request) {
	var req OverloadRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rec := trace.New()
	resp, status, err := s.runOverload(req, rec)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	resp.RunID = s.storeRun(rec, nil)
	resp.TraceURL = "/v1/runs/" + resp.RunID + "/trace"
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) setup(model string, batch int, prof device.Profile) (*experiments.ModelSetup, error) {
	key := fmt.Sprintf("%s/%d/%s", model, batch, prof.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if ms, ok := s.setups[key]; ok {
		return ms, nil
	}
	ms, err := experiments.PrepareModel(model, batch, prof)
	if err != nil {
		return nil, err
	}
	s.setups[key] = ms
	return ms, nil
}

func toResponse(model, scheme, dev string, batch int, rep *metrics.Report) *ColdStartResponse {
	bd := make(map[string]float64, len(rep.Breakdown))
	for c, v := range rep.Breakdown {
		bd[string(c)] = float64(v) / float64(time.Millisecond)
	}
	// Deterministic map content for clients diffing responses.
	keys := make([]string, 0, len(bd))
	for k := range bd {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return &ColdStartResponse{
		Model: model, Scheme: scheme, Device: dev, Batch: batch,
		TotalMs:      float64(rep.Total) / float64(time.Millisecond),
		Utilization:  rep.Utilization(),
		Loads:        rep.Loads,
		LoadedBytes:  rep.LoadedBytes,
		ReuseQueries: rep.ReuseQueries,
		ReuseHits:    rep.ReuseHits,
		SkippedLoads: rep.SkippedLoads,
		Milestone:    rep.Milestone,
		BreakdownMs:  bd,
	}
}
