// Package httpapi exposes the simulated PASK stack as a small JSON web
// service: clients ask "what would a cold start of model X under scheme Y on
// device Z cost?" and receive the full report. It powers cmd/pasksrv and
// gives capacity planners a programmatic what-if interface.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"pask/internal/codeobj"
	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/faults"
	"pask/internal/metrics"
	"pask/internal/onnx/zoo"
	"pask/internal/serving"
)

// Server is the HTTP handler set. Model setups are compiled once per
// (model, device, batch) and cached; runs themselves are deterministic.
type Server struct {
	mu     sync.Mutex
	setups map[string]*experiments.ModelSetup
	mux    *http.ServeMux
}

// New returns a ready-to-serve handler.
func New() *Server {
	s := &Server{setups: make(map[string]*experiments.ModelSetup), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /models", s.handleModels)
	s.mux.HandleFunc("GET /devices", s.handleDevices)
	s.mux.HandleFunc("GET /schemes", s.handleSchemes)
	s.mux.HandleFunc("GET /coldstart", s.handleColdStart)
	s.mux.HandleFunc("GET /serve", s.handleServe)
	s.mux.HandleFunc("GET /multitenant", s.handleMultitenant)
	return s
}

// statusFromErr maps the stack's typed sentinels to HTTP statuses: a missed
// deadline is a gateway timeout, a crashed instance or an exhausted
// degradation ladder is service unavailability, a missing code object is a
// 404, and anything unrecognized stays a blanket 500.
func statusFromErr(err error) int {
	switch {
	case errors.Is(err, serving.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, serving.ErrInstanceCrashed), errors.Is(err, core.ErrNoUsableSolution):
		return http.StatusServiceUnavailable
	case errors.Is(err, codeobj.ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ModelInfo is one /models entry.
type ModelInfo struct {
	Abbr string `json:"abbr"`
	Name string `json:"name"`
	Type string `json:"type"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	var out []ModelInfo
	for _, spec := range zoo.Models() {
		out = append(out, ModelInfo{Abbr: spec.Abbr, Name: spec.Name, Type: spec.Type})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	var out []string
	for _, p := range device.Profiles() {
		out = append(out, p.Name)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	var out []string
	for _, sch := range core.Schemes() {
		out = append(out, string(sch))
	}
	writeJSON(w, http.StatusOK, out)
}

// ColdStartResponse is the /coldstart reply.
type ColdStartResponse struct {
	Model  string `json:"model"`
	Scheme string `json:"scheme"`
	Device string `json:"device"`
	Batch  int    `json:"batch"`

	TotalMs       float64            `json:"total_ms"`
	Utilization   float64            `json:"gpu_utilization"`
	Loads         int                `json:"code_objects_loaded"`
	LoadedBytes   int64              `json:"bytes_loaded"`
	ReuseQueries  int                `json:"reuse_queries"`
	ReuseHits     int                `json:"reuse_hits"`
	SkippedLoads  int                `json:"skipped_loads"`
	Milestone     int                `json:"milestone"`
	BreakdownMs   map[string]float64 `json:"breakdown_ms"`
	SpeedupVsBase float64            `json:"speedup_vs_baseline,omitempty"`
}

// handleColdStart runs ?model=res&scheme=PaSK&device=MI100&batch=1 and
// reports the result; with compare=1 it also runs Baseline and reports the
// speedup.
func (s *Server) handleColdStart(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	model := q.Get("model")
	if model == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing model parameter"))
		return
	}
	schemeName := q.Get("scheme")
	if schemeName == "" {
		schemeName = string(core.SchemePaSK)
	}
	scheme := core.Scheme(schemeName)
	valid := false
	for _, sch := range core.Schemes() {
		if sch == scheme {
			valid = true
		}
	}
	if !valid {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown scheme %q", schemeName))
		return
	}
	devName := q.Get("device")
	if devName == "" {
		devName = "MI100"
	}
	prof, ok := device.ProfileByName(devName)
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown device %q", devName))
		return
	}
	batch := 1
	if b := q.Get("batch"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad batch %q", b))
			return
		}
		batch = v
	}

	ms, err := s.setup(model, batch, prof)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, _, err := ms.RunScheme(scheme, core.Options{})
	if err != nil {
		writeErr(w, statusFromErr(err), err)
		return
	}
	resp := toResponse(model, schemeName, devName, batch, rep)
	if q.Get("compare") == "1" && scheme != core.SchemeBaseline {
		base, _, err := ms.RunScheme(core.SchemeBaseline, core.Options{})
		if err != nil {
			writeErr(w, statusFromErr(err), err)
			return
		}
		resp.SpeedupVsBase = float64(base.Total) / float64(rep.Total)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ServeResponse is the /serve reply: the outcome of a short request trace
// served under a fault-tolerance policy, optionally against a fault plan.
type ServeResponse struct {
	Model    string `json:"model"`
	Scheme   string `json:"scheme"`
	Device   string `json:"device"`
	Batch    int    `json:"batch"`
	Requests int    `json:"requests"`

	Served         int            `json:"served"`
	Failed         int            `json:"failed"`
	Retries        int            `json:"retries"`
	Crashes        int            `json:"crashes"`
	Recovered      int            `json:"recovered"`
	DeadlineMisses int            `json:"deadline_misses"`
	DegradedLayers int            `json:"degraded_layers"`
	P50Ms          float64        `json:"p50_ms"`
	P99Ms          float64        `json:"p99_ms"`
	Failures       map[int]string `json:"failures,omitempty"`
}

// handleServe runs ?model=res&requests=20 through a serving trace. Optional
// knobs: scheme, device, batch; faults= takes a fault-plan spec
// (transient=0.1,permanent=0.02,seed=7,...); retries=, deadline_ms= and
// continue=1 set the fault-tolerance policy. Without continue=1 a failed
// request aborts the trace and the typed error picks the HTTP status.
func (s *Server) handleServe(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	model := q.Get("model")
	if model == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing model parameter"))
		return
	}
	schemeName := q.Get("scheme")
	if schemeName == "" {
		schemeName = string(core.SchemePaSK)
	}
	scheme := core.Scheme(schemeName)
	valid := false
	for _, sch := range core.Schemes() {
		if sch == scheme {
			valid = true
		}
	}
	if !valid {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown scheme %q", schemeName))
		return
	}
	devName := q.Get("device")
	if devName == "" {
		devName = "MI100"
	}
	prof, ok := device.ProfileByName(devName)
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown device %q", devName))
		return
	}
	batch := 1
	if b := q.Get("batch"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad batch %q", b))
			return
		}
		batch = v
	}
	requests := 20
	if n := q.Get("requests"); n != "" {
		v, err := strconv.Atoi(n)
		if err != nil || v < 1 || v > 10000 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad requests %q", n))
			return
		}
		requests = v
	}

	pol := serving.Policy{Scheme: scheme}
	var plan faults.Plan
	if spec := q.Get("faults"); spec != "" {
		var leftover map[string]string
		var err error
		plan, leftover, err = faults.ParsePlan(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if len(leftover) > 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown fault keys %v", leftover))
			return
		}
		pol.Faults = faults.New(plan)
	}
	if v := q.Get("retries"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad retries %q", v))
			return
		}
		pol.FT.MaxRetries = n
	}
	if v := q.Get("deadline_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad deadline_ms %q", v))
			return
		}
		pol.FT.Deadline = time.Duration(f * float64(time.Millisecond))
	}
	pol.FT.ContinueOnError = q.Get("continue") == "1"

	ms, err := s.setup(model, batch, prof)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	trace := serving.PoissonTrace(requests, 2*time.Millisecond, plan.Seed)
	stats, err := serving.ServeTrace(ms, pol, trace, 10)
	if err != nil {
		writeErr(w, statusFromErr(err), err)
		return
	}
	resp := &ServeResponse{
		Model: model, Scheme: schemeName, Device: devName, Batch: batch,
		Requests:       requests,
		Served:         len(stats.Latencies),
		Failed:         stats.Failed,
		Retries:        stats.Retries,
		Crashes:        stats.Crashes,
		Recovered:      stats.Recovered,
		DeadlineMisses: stats.DeadlineMisses,
		DegradedLayers: stats.DegradedLayers,
		P50Ms:          float64(stats.Percentile(0.5)) / float64(time.Millisecond),
		P99Ms:          float64(stats.Percentile(0.99)) / float64(time.Millisecond),
	}
	if len(stats.FailedRequests) > 0 {
		resp.Failures = make(map[int]string, len(stats.FailedRequests))
		for idx, ferr := range stats.FailedRequests {
			resp.Failures[idx] = ferr.Error()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// MultitenantTenant is one model's row in the /multitenant reply.
type MultitenantTenant struct {
	Model          string  `json:"model"`
	IsolatedColdMs float64 `json:"isolated_cold_ms"`
	SharedColdMs   float64 `json:"shared_cold_ms"`
}

// MultitenantTenantLoad is one shared-arm tenant's load attribution.
type MultitenantTenantLoad struct {
	Tenant         string  `json:"tenant"`
	Loads          int     `json:"loads"`
	LoadedBytes    int64   `json:"loaded_bytes"`
	LoadMs         float64 `json:"load_ms"`
	SharedHits     int     `json:"shared_hits"`
	CoalescedWaits int     `json:"coalesced_waits"`
}

// MultitenantResponse is the /multitenant reply: the isolated-vs-shared
// runtime comparison over an interleaved multi-model trace.
type MultitenantResponse struct {
	Models    []string `json:"models"`
	Device    string   `json:"device"`
	Batch     int      `json:"batch"`
	PerTenant int      `json:"requests_per_tenant"`

	IsolatedLoads  int                     `json:"isolated_module_loads"`
	SharedLoads    int                     `json:"shared_module_loads"`
	StoreUntouched bool                    `json:"store_untouched"`
	Tenants        []MultitenantTenant     `json:"tenants"`
	TenantLoads    []MultitenantTenantLoad `json:"tenant_loads"`
}

// handleMultitenant runs ?models=res,vgg&requests=4 through the shared-vs-
// isolated runtime experiment. Optional knobs: device, batch, interval_ms.
func (s *Server) handleMultitenant(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cfg := serving.MultitenantConfig{}
	if v := q.Get("models"); v != "" {
		cfg.Models = strings.Split(v, ",")
	}
	if v := q.Get("device"); v != "" {
		prof, ok := device.ProfileByName(v)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown device %q", v))
			return
		}
		cfg.Profile = prof
	}
	if v := q.Get("batch"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad batch %q", v))
			return
		}
		cfg.Batch = n
	}
	if v := q.Get("requests"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 1000 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad requests %q", v))
			return
		}
		cfg.PerTenant = n
	}
	if v := q.Get("interval_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad interval_ms %q", v))
			return
		}
		cfg.Interval = time.Duration(f * float64(time.Millisecond))
	}
	_, res, err := serving.Multitenant(cfg)
	if err != nil {
		writeErr(w, statusFromErr(err), err)
		return
	}
	cfg.Fill()
	resp := &MultitenantResponse{
		Models: res.Models, Device: cfg.Profile.Name, Batch: cfg.Batch,
		PerTenant:      cfg.PerTenant,
		IsolatedLoads:  res.Isolated.ModuleLoads,
		SharedLoads:    res.Shared.ModuleLoads,
		StoreUntouched: res.StoreUntouched(),
	}
	for _, m := range res.Models {
		resp.Tenants = append(resp.Tenants, MultitenantTenant{
			Model:          m,
			IsolatedColdMs: float64(serving.FirstCold(res.Isolated, m)) / float64(time.Millisecond),
			SharedColdMs:   float64(serving.FirstCold(res.Shared, m)) / float64(time.Millisecond),
		})
	}
	for _, ts := range res.Shared.TenantLoads {
		if ts.Tenant == "" { // root view holds no tenant activity
			continue
		}
		resp.TenantLoads = append(resp.TenantLoads, MultitenantTenantLoad{
			Tenant: ts.Tenant, Loads: ts.Loads, LoadedBytes: ts.BytesLoaded,
			LoadMs:         float64(ts.LoadTime) / float64(time.Millisecond),
			SharedHits:     ts.SharedHits,
			CoalescedWaits: ts.CoalescedWaits,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) setup(model string, batch int, prof device.Profile) (*experiments.ModelSetup, error) {
	key := fmt.Sprintf("%s/%d/%s", model, batch, prof.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if ms, ok := s.setups[key]; ok {
		return ms, nil
	}
	ms, err := experiments.PrepareModel(model, batch, prof)
	if err != nil {
		return nil, err
	}
	s.setups[key] = ms
	return ms, nil
}

func toResponse(model, scheme, dev string, batch int, rep *metrics.Report) *ColdStartResponse {
	bd := make(map[string]float64, len(rep.Breakdown))
	for c, v := range rep.Breakdown {
		bd[string(c)] = float64(v) / float64(time.Millisecond)
	}
	// Deterministic map content for clients diffing responses.
	keys := make([]string, 0, len(bd))
	for k := range bd {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return &ColdStartResponse{
		Model: model, Scheme: scheme, Device: dev, Batch: batch,
		TotalMs:      float64(rep.Total) / float64(time.Millisecond),
		Utilization:  rep.Utilization(),
		Loads:        rep.Loads,
		LoadedBytes:  rep.LoadedBytes,
		ReuseQueries: rep.ReuseQueries,
		ReuseHits:    rep.ReuseHits,
		SkippedLoads: rep.SkippedLoads,
		Milestone:    rep.Milestone,
		BreakdownMs:  bd,
	}
}
