package httpapi

import (
	"net/http"

	"pask/internal/serving"
)

// HealthGPU is one device's entry in the health endpoint: its identity on
// the canonical failover fleet and where it sits on the health ladder
// (DESIGN.md §17).
type HealthGPU struct {
	GPU    int    `json:"gpu"`
	Driver string `json:"driver"`
	Arch   string `json:"arch"`
	Node   int    `json:"node"`
	State  string `json:"state"`
}

// HealthResponse is the GET /v1/health payload. Status reports service
// liveness and is always "ok" when the handler answers; GPUs carries the
// per-device health states of the most recent failover run's warm arm on
// the first fleet — the monitored host this server last simulated. Before
// any failover run the list is empty.
type HealthResponse struct {
	Schema int         `json:"schema"`
	Status string      `json:"status"`
	GPUs   []HealthGPU `json:"gpus"`
}

// storeHealth captures the per-GPU final health states out of a failover
// bench, preferring the warm-failover arm of the first fleet (the canonical
// monitored host).
func (s *Server) storeHealth(bench *serving.FailoverBench) {
	if len(bench.Fleets) == 0 {
		return
	}
	fleet := &bench.Fleets[0]
	arm := fleet.Arm("gpu-death/warm")
	if arm == nil && len(fleet.Arms) > 0 {
		arm = &fleet.Arms[0]
	}
	if arm == nil {
		return
	}
	gpus := make([]HealthGPU, 0, len(arm.GPUs))
	for i, g := range arm.GPUs {
		gpus = append(gpus, HealthGPU{
			GPU: i, Driver: g.Driver, Arch: g.Arch, Node: g.Node, State: g.FinalState,
		})
	}
	s.mu.Lock()
	s.health = gpus
	s.mu.Unlock()
}

// handleHealth serves GET /v1/health.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	gpus := s.health
	s.mu.Unlock()
	if gpus == nil {
		gpus = []HealthGPU{}
	}
	writeJSON(w, http.StatusOK, &HealthResponse{Schema: 1, Status: "ok", GPUs: gpus})
}
