package httpapi

import (
	"encoding/json"
	"net/http"
	"testing"

	"pask/internal/experiments"
)

// TestExperimentsListV1 checks GET /v1/experiments mirrors the registry.
func TestExperimentsListV1(t *testing.T) {
	srv := New()
	resp, data := getFull(t, srv, "/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var infos []ExperimentInfo
	if err := json.Unmarshal(data, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(experiments.All()) {
		t.Fatalf("listed %d experiments, registry has %d", len(infos), len(experiments.All()))
	}
	byName := make(map[string]ExperimentInfo, len(infos))
	for _, in := range infos {
		byName[in.Name] = in
	}
	for _, name := range []string{"predictive", "overload", "multitenant"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("experiment %q missing from /v1/experiments", name)
		}
	}
	if !byName["predictive"].Bench {
		t.Error("predictive should advertise a bench payload")
	}
}

// TestExperimentRunV1 drives the generic registry endpoint for the three
// experiments the API must serve at minimum, checking the versioned
// envelope and the stored trace.
func TestExperimentRunV1(t *testing.T) {
	srv := New()
	for _, name := range []string{"multitenant", "overload", "predictive"} {
		resp, data := postJSON(t, srv, "/v1/experiments/"+name, `{"quick": true}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, data)
		}
		var er ExperimentResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if er.Schema != experiments.EnvelopeSchema || er.Experiment != name {
			t.Errorf("%s: envelope {schema:%d, experiment:%q}, want {%d, %q}",
				name, er.Schema, er.Experiment, experiments.EnvelopeSchema, name)
		}
		if er.Result == nil || len(er.Result.Tables) == 0 {
			t.Errorf("%s: no tables in result", name)
			continue
		}
		if er.RunID == "" || er.TraceURL == "" {
			t.Errorf("%s: missing run handle: %+v", name, er)
			continue
		}
		tr, body := getFull(t, srv, er.TraceURL)
		if tr.StatusCode != http.StatusOK || len(body) == 0 {
			t.Errorf("%s: trace fetch status %d, %d bytes", name, tr.StatusCode, len(body))
		}
	}
}

// TestExperimentRunV1Predictive pins the predictive experiment's bench
// payload shape through the generic endpoint: three devices, three arms.
func TestExperimentRunV1Predictive(t *testing.T) {
	srv := New()
	resp, data := postJSON(t, srv, "/v1/experiments/predictive", `{"quick": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var er struct {
		Result struct {
			Bench struct {
				Experiment string `json:"experiment"`
				Devices    []struct {
					Device string `json:"device"`
					Cells  []struct {
						Arm string `json:"arm"`
					} `json:"cells"`
				} `json:"devices"`
			} `json:"bench"`
		} `json:"result"`
	}
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Result.Bench.Experiment != "predictive" || len(er.Result.Bench.Devices) != 3 {
		t.Fatalf("bench: experiment %q, %d devices", er.Result.Bench.Experiment, len(er.Result.Bench.Devices))
	}
	for _, dev := range er.Result.Bench.Devices {
		if len(dev.Cells) != 3 {
			t.Errorf("%s: %d cells, want 3 arms", dev.Device, len(dev.Cells))
		}
	}
}

// TestExperimentRunV1Errors covers the endpoint's error envelope.
func TestExperimentRunV1Errors(t *testing.T) {
	srv := New()
	cases := []struct {
		path, body string
		status     int
	}{
		{"/v1/experiments/nosuch", `{}`, http.StatusNotFound},
		{"/v1/experiments/predictive", `{"models": ["bert"]}`, http.StatusBadRequest},
		{"/v1/experiments/predictive", `{"batches": [0]}`, http.StatusBadRequest},
		{"/v1/experiments/predictive", `not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, data := postJSON(t, srv, c.path, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("POST %s %q: status %d, want %d (%s)", c.path, c.body, resp.StatusCode, c.status, data)
			continue
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(data, &env); err != nil || env.Error.Code == "" {
			t.Errorf("POST %s: error envelope missing: %s", c.path, data)
		}
	}
}

// TestExperimentAliasesDeprecated checks the bespoke POST routes still
// answer but carry the Deprecation signal pointing at the generic
// endpoint.
func TestExperimentAliasesDeprecated(t *testing.T) {
	srv := New()
	cases := []struct {
		path, body, successor string
	}{
		{"/v1/multitenant", `{"requests": 2}`, "/v1/experiments/multitenant"},
		{"/v1/overload", `{"model": "alex", "quick": true, "arm": "shed", "trace": "burst"}`, "/v1/experiments/overload"},
	}
	for _, c := range cases {
		resp, data := postJSON(t, srv, c.path, c.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %s", c.path, resp.StatusCode, data)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("POST %s: missing Deprecation header", c.path)
		}
		if link := resp.Header.Get("Link"); link != `<`+c.successor+`>; rel="successor-version"` {
			t.Errorf("POST %s: Link %q does not name %s", c.path, link, c.successor)
		}
	}
}
