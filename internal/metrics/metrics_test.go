package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestCategoryTotalsAndCounts(t *testing.T) {
	var tr Tracer
	tr.Add(CatLoad, "a", "loader", ms(0), ms(10))
	tr.Add(CatLoad, "b", "loader", ms(20), ms(25))
	tr.Add(CatExec, "k", "gpu", ms(5), ms(8))
	if got := tr.CategoryTotal(CatLoad); got != ms(15) {
		t.Fatalf("load total = %v", got)
	}
	if tr.Count(CatLoad) != 2 || tr.Count(CatExec) != 1 || tr.Count(CatParse) != 0 {
		t.Fatal("counts wrong")
	}
}

func TestAddPanicsOnNegativeSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var tr Tracer
	tr.Add(CatLoad, "bad", "x", ms(5), ms(4))
}

func TestBreakdownExclusiveAttribution(t *testing.T) {
	spans := []Span{
		{Cat: CatLoad, Start: ms(0), End: ms(10)},
		{Cat: CatExec, Start: ms(5), End: ms(8)}, // overlaps load; exec wins
		{Cat: CatParse, Start: ms(12), End: ms(14)},
	}
	bd := Breakdown(spans, ms(0), ms(20), DefaultPriority())
	if bd[CatExec] != ms(3) {
		t.Fatalf("exec = %v", bd[CatExec])
	}
	if bd[CatLoad] != ms(7) {
		t.Fatalf("load = %v (must exclude exec overlap)", bd[CatLoad])
	}
	if bd[CatParse] != ms(2) {
		t.Fatalf("parse = %v", bd[CatParse])
	}
	if bd[CatOther] != ms(8) {
		t.Fatalf("other = %v", bd[CatOther])
	}
}

func TestBreakdownClipsToWindow(t *testing.T) {
	spans := []Span{{Cat: CatLoad, Start: ms(0), End: ms(100)}}
	bd := Breakdown(spans, ms(10), ms(20), DefaultPriority())
	if bd[CatLoad] != ms(10) {
		t.Fatalf("clipped load = %v", bd[CatLoad])
	}
}

func TestBreakdownEmptyWindow(t *testing.T) {
	bd := Breakdown(nil, ms(5), ms(5), DefaultPriority())
	if len(bd) != 0 {
		t.Fatalf("expected empty breakdown, got %v", bd)
	}
}

// Property: breakdown values always sum exactly to the window length.
func TestBreakdownConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cats := []Category{CatParse, CatLoad, CatExec, CatCopy, CatOverhead}
		var spans []Span
		for i := 0; i < rng.Intn(20); i++ {
			start := ms(rng.Intn(100))
			spans = append(spans, Span{
				Cat:   cats[rng.Intn(len(cats))],
				Start: start,
				End:   start + ms(rng.Intn(30)),
			})
		}
		t0 := ms(rng.Intn(50))
		t1 := t0 + ms(rng.Intn(100)+1)
		bd := Breakdown(spans, t0, t1, DefaultPriority())
		var sum time.Duration
		for _, v := range bd {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == t1-t0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestReportDerivedMetrics(t *testing.T) {
	r := Report{
		Total: ms(100), GPUBusy: ms(25),
		ReuseQueries: 10, ReuseHits: 7, Lookups: 9,
		Breakdown: map[Category]time.Duration{CatLoad: ms(40)},
	}
	if r.Utilization() != 0.25 {
		t.Fatalf("utilization = %v", r.Utilization())
	}
	if r.HitRate() != 0.7 {
		t.Fatalf("hit rate = %v", r.HitRate())
	}
	if got := r.LookupsPerHit(); got < 1.28 || got > 1.29 {
		t.Fatalf("lookups/hit = %v", got)
	}
	if r.Share(CatLoad) != 0.4 {
		t.Fatalf("share = %v", r.Share(CatLoad))
	}
	empty := Report{}
	if empty.Utilization() != 0 || empty.HitRate() != 0 || empty.LookupsPerHit() != 0 || empty.Share(CatLoad) != 0 {
		t.Fatal("zero report must yield zero metrics")
	}
}

func TestFormatTableAlignment(t *testing.T) {
	out := FormatTable([]string{"model", "speedup"}, [][]string{
		{"alex", "5.62x"},
		{"efficientnet", "7.1x"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatal("separator length mismatch")
	}
	if !strings.Contains(lines[2], "alex") || !strings.Contains(lines[3], "efficientnet") {
		t.Fatalf("rows missing:\n%s", out)
	}
	if strings.Index(lines[2], "5.62x") != strings.Index(lines[3], "7.1x") {
		t.Fatal("columns not aligned")
	}
}

func TestFormatCSV(t *testing.T) {
	out := FormatCSV([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "a,b\n1,2\n3,4\n"
	if out != want {
		t.Fatalf("csv = %q", out)
	}
}

func TestTimelineRendersLanes(t *testing.T) {
	spans := []Span{
		{Cat: CatParse, Start: ms(0), End: ms(10)},
		{Cat: CatLoad, Start: ms(5), End: ms(40)},
		{Cat: CatExec, Start: ms(30), End: ms(50)},
	}
	out := Timeline(spans, ms(0), ms(50), 50)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 3 lanes + axis
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "parse") || !strings.HasPrefix(lines[1], "load") || !strings.HasPrefix(lines[2], "exec") {
		t.Fatalf("lane order wrong:\n%s", out)
	}
	// The parse lane is active only in the first fifth of the window.
	parseRow := lines[0][strings.Index(lines[0], "|")+1:]
	if !strings.Contains(parseRow[:12], "#") || strings.Contains(parseRow[20:40], "#") {
		t.Fatalf("parse lane shape wrong: %q", parseRow)
	}
	if !strings.Contains(out, "50.0ms") {
		t.Fatalf("axis label missing:\n%s", out)
	}
}

func TestTimelineEmptyAndClipped(t *testing.T) {
	if Timeline(nil, ms(5), ms(5), 40) != "" {
		t.Fatal("degenerate window must render empty")
	}
	spans := []Span{{Cat: CatLoad, Start: ms(0), End: ms(100)}}
	out := Timeline(spans, ms(40), ms(60), 5)
	if !strings.Contains(out, "#####") {
		t.Fatalf("clipped span should fill the lane: %s", out)
	}
}
