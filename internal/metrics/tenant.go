package metrics

import (
	"fmt"
	"time"
)

// TenantLoad is one tenant's share of a shared GPU runtime's loading
// activity — the attribution row multi-tenant serving reports per model
// instance. Loads/Bytes/LoadTime are loads the tenant initiated and paid
// for; SharedHits are requests answered by modules some other view loaded
// first; CoalescedWaits are loads the tenant waited out on another view's
// in-flight load of the same object.
type TenantLoad struct {
	Tenant         string
	Loads          int
	BytesLoaded    int64
	LoadTime       time.Duration
	SharedHits     int
	CoalescedWaits int
}

// TenantLoadHeaders returns the column headers matching TenantLoadRow.
func TenantLoadHeaders() []string {
	return []string{"tenant", "loads", "loaded_mb", "load_ms", "shared_hits", "coalesced"}
}

// TenantLoadRow formats one attribution row for FormatTable/FormatCSV.
func TenantLoadRow(t TenantLoad) []string {
	return []string{
		t.Tenant,
		fmt.Sprintf("%d", t.Loads),
		fmt.Sprintf("%.2f", float64(t.BytesLoaded)/(1<<20)),
		fmt.Sprintf("%.2f", float64(t.LoadTime)/float64(time.Millisecond)),
		fmt.Sprintf("%d", t.SharedHits),
		fmt.Sprintf("%d", t.CoalescedWaits),
	}
}
