// Package metrics collects virtual-time spans from a model run and turns
// them into the quantities the paper reports: GPU utilization (Fig 6b) and
// exclusive phase breakdowns (Fig 1b, Fig 7). Spans may overlap freely (the
// whole point of PASK is overlapping loading with execution); Breakdown
// attributes every instant of wall time to exactly one category by priority.
//
// Paper anchor: the Fig 1b / Fig 7 phase breakdowns and Fig 6b utilization.
package metrics

import (
	"fmt"
	"slices"
	"strings"
	"time"
)

// Category labels one kind of activity.
type Category string

const (
	CatParse     Category = "parse"    // model deserialization
	CatLoad      Category = "load"     // code-object loading
	CatLaunch    Category = "launch"   // kernel submission
	CatExec      Category = "exec"     // GPU computing
	CatCopy      Category = "copy"     // host<->device parameter transfer
	CatOverhead  Category = "overhead" // PASK cache queries / applicability checks
	CatSync      Category = "sync"     // host-device synchronization
	CatTransform Category = "xform"    // layout interchange kernels
	CatRecovery  Category = "recovery" // fault handling: substitute search, ladder fallback
	CatOther     Category = "other"
)

// Attr is one key/value annotation on a span (pattern, solution, tenant,
// byte counts). Values are pre-rendered strings so recording stays cheap.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed activity.
type Span struct {
	Cat    Category
	Name   string
	Start  time.Duration
	End    time.Duration
	Thread string
	Attrs  []Attr
}

// SpanObserver receives every span a Tracer records, as it is recorded. The
// trace recorder implements it to build exportable timelines; implementations
// must tolerate concurrent calls when tracers from different goroutines share
// one observer.
type SpanObserver interface {
	ObserveSpan(Span)
}

// Tracer accumulates spans during a run. The zero value is ready to use.
type Tracer struct {
	spans []Span
	obs   SpanObserver
}

// SetObserver forwards every subsequently recorded span to o (nil detaches).
func (t *Tracer) SetObserver(o SpanObserver) { t.obs = o }

// Add records a span; degenerate spans (End <= Start) are kept only if they
// carry a category (they still mark events but contribute no time).
func (t *Tracer) Add(cat Category, name, thread string, start, end time.Duration) {
	t.AddSpan(Span{Cat: cat, Name: name, Start: start, End: end, Thread: thread})
}

// AddSpan records a fully-formed span, attributes included.
func (t *Tracer) AddSpan(s Span) {
	if s.End < s.Start {
		panic(fmt.Sprintf("metrics: span %q ends (%v) before it starts (%v)", s.Name, s.End, s.Start))
	}
	t.spans = append(t.spans, s)
	if t.obs != nil {
		t.obs.ObserveSpan(s)
	}
}

// Spans returns all recorded spans.
func (t *Tracer) Spans() []Span { return t.spans }

// CategoryTotal sums the raw (possibly overlapping) time in a category.
func (t *Tracer) CategoryTotal(cat Category) time.Duration {
	var total time.Duration
	for _, s := range t.spans {
		if s.Cat == cat {
			total += s.End - s.Start
		}
	}
	return total
}

// Count returns the number of spans in a category.
func (t *Tracer) Count(cat Category) int {
	n := 0
	for _, s := range t.spans {
		if s.Cat == cat {
			n++
		}
	}
	return n
}

// DefaultPriority is the attribution order used for the paper's breakdowns:
// work that keeps the GPU busy first (compute, then DMA), then loading, then
// the host bookkeeping categories.
func DefaultPriority() []Category {
	return []Category{CatExec, CatCopy, CatLoad, CatTransform, CatOverhead, CatRecovery, CatLaunch, CatParse, CatSync}
}

// Breakdown attributes every instant of [t0, t1] to exactly one category:
// the highest-priority category with an active span at that instant, or
// CatOther when none is active. The result's values sum to t1-t0.
func Breakdown(spans []Span, t0, t1 time.Duration, priority []Category) map[Category]time.Duration {
	out := make(map[Category]time.Duration, len(priority)+1)
	if t1 <= t0 {
		return out
	}
	rank := make(map[Category]int, len(priority))
	for i, c := range priority {
		rank[c] = i + 1
	}
	// Collect edges inside the window.
	edges := []time.Duration{t0, t1}
	for _, s := range spans {
		if s.End <= t0 || s.Start >= t1 {
			continue
		}
		if s.Start > t0 {
			edges = append(edges, s.Start)
		}
		if s.End < t1 {
			edges = append(edges, s.End)
		}
	}
	slices.Sort(edges)
	for i := 1; i < len(edges); i++ {
		lo, hi := edges[i-1], edges[i]
		if hi <= lo {
			continue
		}
		mid := lo + (hi-lo)/2
		best := CatOther
		bestRank := len(priority) + 2
		for _, s := range spans {
			if s.Start <= mid && mid < s.End {
				if r, ok := rank[s.Cat]; ok && r < bestRank {
					bestRank = r
					best = s.Cat
				}
			}
		}
		out[best] += hi - lo
	}
	return out
}

// Report summarizes one model run under one scheme.
type Report struct {
	Scheme string
	Model  string
	Batch  int

	Total   time.Duration // end-to-end wall time of the run
	GPUBusy time.Duration // union of GPU-active intervals

	Loads       int   // code objects loaded
	LoadedBytes int64 // container bytes loaded

	// PASK reuse statistics (zero for non-PASK schemes).
	ReuseQueries int // GetSubSolution invocations
	ReuseHits    int // queries answered with a cached instance
	Lookups      int // IsApplicable evaluations inside queries
	Milestone    int // index of the milestone layer
	SkippedLoads int // loads avoided via reuse

	// PressureReuse counts layers served by pressure-forced substitutes —
	// reuse taken only because the serving layer signaled overload (zero
	// under nominal pressure).
	PressureReuse int

	// Profile-warmup statistics (zero unless the run replayed a manifest).
	WarmupEntries    int // manifest entries the prefetcher considered
	WarmupPrefetched int // objects made resident by replay (paid + coalesced)
	WarmupHits       int // objects the run used that replay covered
	WarmupMisses     int // objects the run used that replay did not cover
	WarmupWasted     int // objects replay loaded that the run never used
	WarmupStale      int // entries skipped on checksum mismatch or read error

	Breakdown map[Category]time.Duration
}

// Utilization returns the GPU-active fraction of the run.
func (r *Report) Utilization() float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.GPUBusy) / float64(r.Total)
}

// HitRate returns the reuse-query hit fraction.
func (r *Report) HitRate() float64 {
	if r.ReuseQueries == 0 {
		return 0
	}
	return float64(r.ReuseHits) / float64(r.ReuseQueries)
}

// LookupsPerHit returns the average applicability checks per successful
// query (paper Fig 9b).
func (r *Report) LookupsPerHit() float64 {
	if r.ReuseHits == 0 {
		return 0
	}
	return float64(r.Lookups) / float64(r.ReuseHits)
}

// Share returns a category's fraction of total time in the breakdown.
func (r *Report) Share(cat Category) float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.Breakdown[cat]) / float64(r.Total)
}

// FormatTable renders rows as an aligned text table.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// FormatCSV renders rows as comma-separated values with a header line.
func FormatCSV(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(headers, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
