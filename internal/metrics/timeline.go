package metrics

import (
	"fmt"
	"slices"
	"strings"
	"time"
)

// Timeline renders spans as an ASCII Gantt chart, one lane per category, so
// a run's overlap structure (the interleaving PASK introduces) is visible in
// a terminal.
//
//	parse  |■■■···································|
//	load   |···■■■■■■■■■■■■■······■■■■■···········|
//	exec   |·······■■····■■■■■■■■■■■■■■■■■■■■■···|
func Timeline(spans []Span, t0, t1 time.Duration, width int) string {
	if width < 10 {
		width = 10
	}
	if t1 <= t0 {
		return ""
	}
	lanes := map[Category][]Span{}
	for _, s := range spans {
		if s.End <= t0 || s.Start >= t1 {
			continue
		}
		lanes[s.Cat] = append(lanes[s.Cat], s)
	}
	order := []Category{CatParse, CatLoad, CatOverhead, CatRecovery, CatLaunch, CatCopy, CatExec, CatSync}
	var cats []Category
	seen := map[Category]bool{}
	for _, c := range order {
		if len(lanes[c]) > 0 {
			cats = append(cats, c)
			seen[c] = true
		}
	}
	var rest []Category
	for c := range lanes {
		if !seen[c] {
			rest = append(rest, c)
		}
	}
	slices.Sort(rest)
	cats = append(cats, rest...)

	scale := float64(width) / float64(t1-t0)
	var b strings.Builder
	for _, c := range cats {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range lanes[c] {
			lo := int(float64(clampDur(s.Start, t0, t1)-t0) * scale)
			hi := int(float64(clampDur(s.End, t0, t1)-t0) * scale)
			if hi <= lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-9s |%s|\n", c, row)
	}
	fmt.Fprintf(&b, "%-9s  0%*s\n", "", width-1, fmt.Sprintf("%.1fms", float64(t1-t0)/1e6))
	return b.String()
}

func clampDur(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
