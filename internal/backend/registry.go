package backend

import (
	"slices"
	"time"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/sim"
)

// shared is the per-GPU registry state every view of a Registry aliases:
// module residency, singleflight load dedup, the negative cache, retry
// policy, the driver lock and the aggregate stats.
type shared struct {
	flavor  Flavor
	store   *codeobj.Store
	modules map[string]*Module
	// loadedBytes tracks the summed container size of sh.modules, kept in
	// lockstep by addModule/removeModule so the eviction loop and residency
	// gauges read it in O(1) instead of walking the module map per load.
	loadedBytes int64
	inflight    map[string]*loadState
	failed      map[string]error // negative cache: permanent failures only
	refs        map[string]int   // path -> live tenant pins (eviction guard)
	driverLock  *sim.Resource
	ctxReady    bool
	lost        bool  // device fell off the bus; terminal
	lostErr     error // cached flavor.DeviceLostError()
	stats       Stats
	retry       RetryPolicy
	loadFaults  LoadFaultInjector
	obs         RegistryObserver
	peers       PeerSource
	views       []*Registry // root first, then every Attach in order
}

// addModule registers a resident module, maintaining the byte counter.
func (sh *shared) addModule(path string, m *Module) {
	sh.modules[path] = m
	sh.loadedBytes += int64(m.Object.Size())
}

// removeModule drops a resident module, maintaining the byte counter.
func (sh *shared) removeModule(path string) bool {
	m, ok := sh.modules[path]
	if !ok {
		return false
	}
	delete(sh.modules, path)
	sh.loadedBytes -= int64(m.Object.Size())
	return true
}

// observe emits an instant event to the shared observer, if any.
func (sh *shared) observe(env *sim.Env, kind, path string) {
	if sh.obs != nil {
		sh.obs.RegistryEvent(kind, path, env.Now())
	}
}

// sampleResidency emits the resident-bytes/modules gauges after any change
// to the module map. Series are named per driver ("hip_resident_bytes",
// "cuda_resident_modules", ...) so heterogeneous hosts chart per backend.
func (rt *Registry) sampleResidency() {
	if rt.sh.obs == nil {
		return
	}
	now := rt.env.Now()
	driver := rt.sh.flavor.Driver()
	rt.sh.obs.RegistrySample(driver+"_resident_bytes", now, float64(rt.LoadedCodeBytes()))
	rt.sh.obs.RegistrySample(driver+"_resident_modules", now, float64(len(rt.sh.modules)))
}

// Registry is one view of a GPU's shared module registry — the generic
// Backend implementation every flavor (hip, cuda) instantiates. New returns
// the root view; Attach returns additional tenant views that pin the modules
// they reference so eviction cannot pull a live tenant's kernels out from
// under it. All views observe the same residency, negative cache and retry
// state; the OnLoad hook and the tenant attribution stats are per view.
type Registry struct {
	env  *sim.Env
	gpu  *device.GPU
	host device.HostProfile

	sh *shared

	tenant   string
	pinned   map[string]bool // nil for the root view: no pinning
	tstats   TenantStats
	detached bool

	onLoad OnLoadFunc
}

type loadState struct {
	done *sim.Signal
	mod  *Module
	err  error
}

// New creates a cold registry of the given flavor over the device and
// code-object store and returns its root view.
func New(env *sim.Env, gpu *device.GPU, host device.HostProfile, store *codeobj.Store, flavor Flavor) *Registry {
	rt := &Registry{
		env:  env,
		gpu:  gpu,
		host: host,
		sh: &shared{
			flavor:     flavor,
			store:      store,
			modules:    make(map[string]*Module),
			inflight:   make(map[string]*loadState),
			failed:     make(map[string]error),
			refs:       make(map[string]int),
			driverLock: sim.NewResource(env, 1),
		},
	}
	rt.sh.views = []*Registry{rt}
	return rt
}

// Driver returns the flavor name.
func (rt *Registry) Driver() string { return rt.sh.flavor.Driver() }

// Env returns the simulation environment.
func (rt *Registry) Env() *sim.Env { return rt.env }

// GPU returns the device this registry loads modules onto.
func (rt *Registry) GPU() *device.GPU { return rt.gpu }

// Host returns the host-side framework cost profile.
func (rt *Registry) Host() device.HostProfile { return rt.host }

// SetOnLoad installs this view's load observer (nil removes it).
func (rt *Registry) SetOnLoad(fn OnLoadFunc) { rt.onLoad = fn }

// Attach creates a tenant view named name over this registry's shared state.
// The view sees every module already resident, coalesces its loads with
// other views' in-flight loads, and pins each module it references so
// eviction under code-memory pressure cannot drop another tenant's live
// kernels. Detach releases the pins.
func (rt *Registry) Attach(name string) Backend {
	v := &Registry{
		env:    rt.env,
		gpu:    rt.gpu,
		host:   rt.host,
		sh:     rt.sh,
		tenant: name,
		pinned: make(map[string]bool),
	}
	v.tstats.Tenant = name
	rt.sh.views = append(rt.sh.views, v)
	return v
}

// Detach releases every module pin this view holds. Pinned modules stay
// resident (they are the warm cache the next tenant benefits from) but
// become evictable under memory pressure. Detaching never unloads a module
// another view still pins. Detach is idempotent.
func (rt *Registry) Detach() {
	if rt.detached {
		return
	}
	for path := range rt.pinned {
		if rt.sh.refs[path]--; rt.sh.refs[path] <= 0 {
			delete(rt.sh.refs, path)
		}
	}
	rt.pinned = nil
	rt.tstats.Pinned = 0
	rt.detached = true
}

// Detached reports whether Detach has been called on this view.
func (rt *Registry) Detached() bool { return rt.detached }

// Tenant returns the view's name ("" for the root view).
func (rt *Registry) Tenant() string { return rt.tenant }

// pin records that this view references path, guarding the module against
// eviction. The root view does not pin (preserving the single-tenant LRU
// behavior); tenant views pin each path once.
func (rt *Registry) pin(path string) {
	if rt.pinned == nil || rt.pinned[path] {
		return
	}
	rt.pinned[path] = true
	rt.sh.refs[path]++
	rt.tstats.Pinned++
}

// Refs returns the number of live tenant pins on path.
func (rt *Registry) Refs(path string) int { return rt.sh.refs[path] }

// PinnedPaths returns the paths this view currently pins, sorted — a stable
// order regardless of pin sequence, so multi-GPU experiment output stays
// byte-deterministic.
func (rt *Registry) PinnedPaths() []string {
	out := make([]string, 0, len(rt.pinned))
	for p := range rt.pinned {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// SetRetry sets the shared transient-retry policy (MaxRetries < 0 disables
// retrying; the zero value means the flavor's default).
func (rt *Registry) SetRetry(p RetryPolicy) { rt.sh.retry = p }

// SetLoadFaults installs (or with nil removes) the shared load-latency fault
// injector.
func (rt *Registry) SetLoadFaults(inj LoadFaultInjector) { rt.sh.loadFaults = inj }

// SetObserver installs (or with nil removes) the shared registry observer.
// Like the retry policy it is registry-wide: every view's activity is
// reported to the same observer.
func (rt *Registry) SetObserver(o RegistryObserver) { rt.sh.obs = o }

// SetPeers installs (or with nil removes) the shared peer source consulted
// on load misses — the cross-GPU cache-peering seam.
func (rt *Registry) SetPeers(ps PeerSource) { rt.sh.peers = ps }

// retryPolicy resolves the effective retry policy.
func (rt *Registry) retryPolicy() RetryPolicy {
	if rt.sh.retry.MaxRetries < 0 {
		return RetryPolicy{}
	}
	if rt.sh.retry == (RetryPolicy{}) {
		return rt.sh.flavor.DefaultRetry()
	}
	return rt.sh.retry
}

// Store returns the backing code-object store.
func (rt *Registry) Store() *codeobj.Store { return rt.sh.store }

// Stats returns a snapshot of the shared loading statistics.
func (rt *Registry) Stats() Stats { return rt.sh.stats }

// TenantStats returns this view's attribution counters.
func (rt *Registry) TenantStats() TenantStats { return rt.tstats }

// AllTenantStats returns the attribution counters of every view: the root
// view first, then the tenant views sorted by name (detached views included
// — their history still counts). The sorted order keeps experiment output
// byte-deterministic when placement fans tenants out across GPUs in
// policy-dependent attach order.
func (rt *Registry) AllTenantStats() []TenantStats {
	out := make([]TenantStats, 0, len(rt.sh.views))
	for _, v := range rt.sh.views[1:] {
		out = append(out, v.tstats)
	}
	slices.SortStableFunc(out, func(a, b TenantStats) int {
		if a.Tenant < b.Tenant {
			return -1
		}
		if a.Tenant > b.Tenant {
			return 1
		}
		return 0
	})
	return append([]TenantStats{rt.sh.views[0].tstats}, out...)
}

// NumViews returns the number of views over the shared state (root
// included).
func (rt *Registry) NumViews() int { return len(rt.sh.views) }

// ContextReady reports whether InitContext has completed.
func (rt *Registry) ContextReady() bool { return rt.sh.ctxReady }

// InitContext creates the GPU context, charging the device's context
// initialization cost once per shared registry. Tenants attaching to a warm
// registry skip it — the per-GPU daemon already holds the context.
func (rt *Registry) InitContext(p *sim.Proc) {
	if rt.sh.ctxReady {
		return
	}
	p.Sleep(rt.gpu.Profile.ContextInit)
	rt.sh.ctxReady = true
}

// Loaded reports whether the module at path is resident.
func (rt *Registry) Loaded(path string) bool {
	_, ok := rt.sh.modules[path]
	return ok
}

// NumLoaded returns the number of resident modules.
func (rt *Registry) NumLoaded() int { return len(rt.sh.modules) }

// ResidentObject returns the parsed object of a resident module — the bytes
// a peering neighbor transfers instead of re-reading the store.
func (rt *Registry) ResidentObject(path string) (*codeobj.Object, bool) {
	if m, ok := rt.sh.modules[path]; ok {
		return m.Object, true
	}
	return nil, false
}

// ResidentPaths returns the paths of every resident module, sorted.
func (rt *Registry) ResidentPaths() []string {
	out := make([]string, 0, len(rt.sh.modules))
	for p := range rt.sh.modules {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// loadSymbolCount returns the symbol count charged at load time: lazy
// flavors defer per-symbol resolution to the first lookup of each symbol.
func (rt *Registry) loadSymbolCount(obj *codeobj.Object) int {
	if rt.sh.flavor.LazySymbols() {
		return 0
	}
	return obj.NumSymbols()
}

// newModule wraps obj as a registered module, allocating the lazy-symbol
// ledger when the flavor defers resolution.
func (rt *Registry) newModule(path string, obj *codeobj.Object, at time.Duration, resident bool) *Module {
	m := &Module{Path: path, Object: obj, LoadedAt: at, resident: resident}
	if rt.sh.flavor.LazySymbols() {
		m.resolved = make(map[string]bool)
	}
	return m
}

// ModuleLoad returns the module at path, loading it if absent. Loading reads
// the object from the store, validates it (real parse), resolves symbols and
// charges the device profile's load time. Concurrent loads of the same path
// coalesce — across views too, so two tenants requesting the same .pko pay
// exactly one load. Distinct loads serialize on the driver lock, as real
// drivers do.
//
// With a peer source installed, a miss first consults neighbor GPUs: a
// compatible resident copy whose transfer cost undercuts the local
// store-load estimate is fetched over the interconnect instead (counted in
// PeerFetches, not ModuleLoads).
//
// Transient store errors are retried with capped doubling backoff (see
// SetRetry); permanent errors (missing object, parse failure, arch mismatch)
// are negatively cached so repeat callers fail fast without re-reading a
// known-bad object.
func (rt *Registry) ModuleLoad(p *sim.Proc, path string) (*Module, error) {
	sh := rt.sh
	if sh.lost {
		// A dead device fails instantly: the driver call never reaches the
		// store, costs no virtual time, and is not negatively cached (the
		// object is fine — the device is gone).
		sh.stats.FailedLoads++
		rt.tstats.FailedLoads++
		return nil, sh.lostErr
	}
	if m, ok := sh.modules[path]; ok {
		sh.stats.LoadHits++
		rt.tstats.SharedHits++
		rt.pin(path)
		return m, nil
	}
	if err, ok := sh.failed[path]; ok {
		sh.stats.NegativeHits++
		rt.tstats.NegativeHits++
		sh.observe(rt.env, "negative_hit", path)
		return nil, err
	}
	if st, ok := sh.inflight[path]; ok {
		sh.stats.CoalescedWaits++
		rt.tstats.CoalescedWaits++
		sh.observe(rt.env, "coalesced_wait", path)
		st.done.Wait(p)
		if st.err == nil {
			rt.pin(path)
		}
		return st.mod, st.err
	}
	st := &loadState{done: sim.NewSignal(p.Env())}
	sh.inflight[path] = st

	start := p.Now()
	var viaPeer bool
	st.mod, viaPeer, st.err = rt.loadOrPeer(p, path)
	if sh.lost && st.err == nil {
		// The device died while the load was in flight: the driver call
		// completes into a void and the caller sees the device-lost error.
		st.mod, st.err = nil, sh.lostErr
	}

	delete(sh.inflight, path)
	if st.err == nil {
		rt.evictForSpace(int64(st.mod.Object.Size()))
		sh.addModule(path, st.mod)
		if viaPeer {
			sh.stats.PeerFetches++
			sh.stats.PeerBytes += int64(st.mod.Object.Size())
			rt.tstats.PeerFetches++
			sh.observe(rt.env, "peer_fetch", path)
		} else {
			sh.stats.ModuleLoads++
			sh.stats.BytesLoaded += int64(st.mod.Object.Size())
			rt.tstats.Loads++
			rt.tstats.BytesLoaded += int64(st.mod.Object.Size())
		}
		rt.pin(path)
	} else {
		sh.stats.FailedLoads++
		rt.tstats.FailedLoads++
		if !IsTransient(st.err) && !IsDeviceLost(st.err) {
			sh.failed[path] = st.err
			sh.stats.PermanentFailures++
		}
	}
	sh.stats.LoadTimeTotal += p.Now() - start
	rt.tstats.LoadTime += p.Now() - start
	if st.err == nil {
		rt.sampleResidency()
	}
	if rt.onLoad != nil {
		rt.onLoad(path, start, p.Now(), st.err)
	}
	st.done.Fire()
	return st.mod, st.err
}

// loadOrPeer serves a registry miss: from a neighbor GPU's resident copy
// when one is offered cheaper than the local store-load estimate, otherwise
// through the retrying store path. The peer transfer pays the driver's fixed
// module registration cost plus the link cost, under the driver lock like
// any other load. A link-faulted offer (PeerModule.Err) wastes its Stall,
// then falls back to the local demand load exactly once — the fallback is a
// plain store load, so it counts in ModuleLoads and never in PeerFetches.
func (rt *Registry) loadOrPeer(p *sim.Proc, path string) (*Module, bool, error) {
	if sh := rt.sh; sh.peers != nil {
		if pm, ok := sh.peers.PeerLookup(path); ok && pm.Object != nil &&
			pm.Object.Arch == rt.gpu.Profile.Arch {
			est := rt.gpu.Profile.LoadTime(int64(pm.Object.Size()), rt.loadSymbolCount(pm.Object))
			if cost := rt.gpu.Profile.ModuleLoadFixed + pm.Cost; cost < est {
				if pm.Err != nil {
					// The link is down: the transfer dies after the stall and
					// the miss degrades to a local demand load.
					if pm.Stall > 0 {
						p.Sleep(pm.Stall)
					}
					sh.stats.PeerFetchFails++
					sh.observe(rt.env, "peer_fetch_fail", path)
				} else {
					sh.driverLock.Acquire(p)
					p.Sleep(cost + pm.Stall)
					sh.driverLock.Release()
					return rt.newModule(path, pm.Object, p.Now(), false), true, nil
				}
			}
		}
	}
	m, err := rt.loadWithRetry(p, path)
	return m, false, err
}

// loadWithRetry drives loadLocked through the retry policy, holding the
// driver lock only per attempt so backoff sleeps don't stall other loads.
func (rt *Registry) loadWithRetry(p *sim.Proc, path string) (*Module, error) {
	pol := rt.retryPolicy()
	backoff := pol.Backoff
	for attempt := 0; ; attempt++ {
		rt.sh.driverLock.Acquire(p)
		m, err := rt.loadLocked(p, path)
		rt.sh.driverLock.Release()
		if err == nil || !IsTransient(err) || attempt >= pol.MaxRetries {
			return m, err
		}
		rt.sh.stats.TransientRetries++
		rt.sh.observe(rt.env, "transient_retry", path)
		if backoff > 0 {
			p.Sleep(backoff)
			backoff *= 2
			if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
	}
}

// ForgetFailure drops path from the negative cache — operators repair
// objects in place and the next ModuleLoad should try again.
func (rt *Registry) ForgetFailure(path string) bool {
	if _, ok := rt.sh.failed[path]; !ok {
		return false
	}
	delete(rt.sh.failed, path)
	return true
}

// ClearFailures empties the shared negative cache and returns how many
// entries it dropped. Tenant replacement uses it so a fresh tenant view
// starts with the same clean slate a fresh isolated process would have.
func (rt *Registry) ClearFailures() int {
	n := len(rt.sh.failed)
	for path := range rt.sh.failed {
		delete(rt.sh.failed, path)
	}
	return n
}

// FailedPermanently reports whether path is negatively cached.
func (rt *Registry) FailedPermanently(path string) bool {
	_, ok := rt.sh.failed[path]
	return ok
}

// loadLocked performs the actual read + validate + relocate under the driver
// lock, charging virtual time proportional to the object size and symbols.
func (rt *Registry) loadLocked(p *sim.Proc, path string) (*Module, error) {
	data, err := rt.sh.store.Get(path)
	if err != nil {
		// A failed open still costs the fixed driver overhead.
		p.Sleep(rt.gpu.Profile.ModuleLoadFixed)
		return nil, rt.sh.flavor.LoadError(path, err)
	}
	if rt.sh.loadFaults != nil {
		if d := rt.sh.loadFaults.ExtraLoadLatency(p.Now(), path); d > 0 {
			p.Sleep(d)
		}
		if li, ok := rt.sh.loadFaults.(LoadErrorInjector); ok {
			if ierr := li.ExtraLoadError(p.Now(), path); ierr != nil {
				// The injected read error still costs the fixed driver
				// overhead, like any failed open.
				p.Sleep(rt.gpu.Profile.ModuleLoadFixed)
				return nil, rt.sh.flavor.LoadError(path, ierr)
			}
		}
	}
	obj, perr := codeobj.Parse(data)
	if perr != nil {
		// The driver read and checksummed the file before rejecting it.
		p.Sleep(rt.gpu.Profile.LoadTime(int64(len(data)), 0))
		return nil, rt.sh.flavor.ParseError(path, perr)
	}
	if arch := rt.gpu.Profile.Arch; obj.Arch != arch {
		p.Sleep(rt.gpu.Profile.ModuleLoadFixed)
		return nil, rt.sh.flavor.ArchError(path, obj.Arch, arch)
	}
	load := rt.gpu.Profile.LoadTime(int64(obj.Size()), rt.loadSymbolCount(obj))
	if ls, ok := rt.sh.loadFaults.(LoadLatencyScaler); ok {
		if f := ls.LoadLatencyScale(p.Now()); f > 1 {
			load = time.Duration(float64(load) * f)
		}
	}
	p.Sleep(load)
	return rt.newModule(path, obj, p.Now(), false), nil
}

// evictForSpace drops least-recently-used non-resident modules until a new
// object of the given size fits into the device's code-memory budget — the
// memory pressure that forces edge devices to re-pay cold starts (paper §I).
// Modules pinned by a live tenant view are never victims: eviction may only
// touch modules no attached tenant references. When only resident or pinned
// modules remain the budget is allowed to overshoot.
func (rt *Registry) evictForSpace(incoming int64) {
	budget := rt.gpu.Profile.CodeMemory
	if budget <= 0 {
		return
	}
	sh := rt.sh
	for sh.loadedBytes+incoming > budget {
		var victim *Module
		for _, m := range sh.modules {
			if m.resident || sh.refs[m.Path] > 0 {
				continue
			}
			if victim == nil || m.lastUsed < victim.lastUsed ||
				(m.lastUsed == victim.lastUsed && m.Path < victim.Path) {
				victim = m
			}
		}
		if victim == nil {
			return // only resident or pinned modules remain
		}
		sh.removeModule(victim.Path)
		sh.stats.Evictions++
		sh.observe(rt.env, "evict", victim.Path)
	}
}

// ModuleGetFunction resolves a kernel symbol in a loaded module. Lazy
// flavors charge the deferred per-symbol resolution cost on the first
// lookup of each symbol.
func (rt *Registry) ModuleGetFunction(p *sim.Proc, m *Module, name string) (*Function, error) {
	k, ok := m.Object.Symbol(name)
	if !ok {
		return nil, rt.sh.flavor.SymbolError(name, m.Path)
	}
	if m.resolved != nil && !m.resolved[name] {
		p.Sleep(rt.gpu.Profile.SymbolResolve)
		m.resolved[name] = true
	}
	m.lastUsed = rt.env.Now()
	return &Function{Module: m, Kernel: k}, nil
}

// GetFunction loads the module at path if needed (the lazy path the reactive
// baseline hits at launch time) and resolves the symbol.
func (rt *Registry) GetFunction(p *sim.Proc, path, name string) (*Function, error) {
	m, err := rt.ModuleLoad(p, path)
	if err != nil {
		return nil, err
	}
	return rt.ModuleGetFunction(p, m, name)
}

// RegisterResident maps a code object that ships inside an already-open
// shared library: the bytes are parsed and the symbols registered, but only
// the cheap mapping cost is charged (no file read or relocation pass). A
// tenant attaching after another view already mapped the object pays
// nothing.
func (rt *Registry) RegisterResident(p *sim.Proc, path string) (*Module, error) {
	if rt.sh.lost {
		return nil, rt.sh.lostErr
	}
	if m, ok := rt.sh.modules[path]; ok {
		rt.pin(path)
		return m, nil
	}
	pol := rt.retryPolicy()
	backoff := pol.Backoff
	data, err := rt.sh.store.Get(path)
	for attempt := 0; err != nil && IsTransient(err) && attempt < pol.MaxRetries; attempt++ {
		rt.sh.stats.TransientRetries++
		if backoff > 0 {
			p.Sleep(backoff)
			backoff *= 2
			if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
		data, err = rt.sh.store.Get(path)
	}
	if err != nil {
		return nil, rt.sh.flavor.ResidentLoadError(path, err)
	}
	obj, perr := codeobj.Parse(data)
	if perr != nil {
		return nil, rt.sh.flavor.ResidentParseError(path, perr)
	}
	p.Sleep(rt.host.ResidentMap)
	m := rt.newModule(path, obj, p.Now(), true)
	rt.sh.addModule(path, m)
	rt.pin(path)
	rt.sampleResidency()
	return m, nil
}

// Unload evicts a module from the registry (edge/suspend scenarios). It
// ignores tenant pins — callers model forced device-side eviction.
func (rt *Registry) Unload(path string) bool {
	if !rt.sh.removeModule(path) {
		return false
	}
	rt.sh.observe(rt.env, "unload", path)
	rt.sampleResidency()
	return true
}

// UnloadAll evicts every non-resident module, modeling a device reset that
// keeps the process (and its mapped library binary) alive. Tenant pins
// survive the reset: they record intent, and the next ModuleLoad re-loads.
// A reset never revives a lost device — that state is terminal.
func (rt *Registry) UnloadAll() {
	for path, m := range rt.sh.modules {
		if !m.resident {
			rt.sh.removeModule(path)
		}
	}
	rt.sh.observe(rt.env, "reset", "")
	rt.sampleResidency()
}

// MarkDeviceLost drops the GPU off the bus. Every module — residents
// included, unlike an UnloadAll reset — is gone with the device memory, and
// every subsequent load on any view fails instantly with the flavor's
// device-lost error. Terminal and idempotent: no reset or recovery path
// revives a lost device; the serving layer evacuates its tenants instead.
func (rt *Registry) MarkDeviceLost() {
	sh := rt.sh
	if sh.lost {
		return
	}
	sh.lost = true
	sh.lostErr = sh.flavor.DeviceLostError()
	for path := range sh.modules {
		sh.removeModule(path)
	}
	sh.observe(rt.env, "device_lost", "")
	rt.sampleResidency()
}

// DeviceLost reports whether the device has been marked lost.
func (rt *Registry) DeviceLost() bool { return rt.sh.lost }

// Preload loads every listed module, stopping at the first error. Used to
// realize the paper's Ideal scheme (all solutions resident before timing
// starts).
func (rt *Registry) Preload(p *sim.Proc, paths []string) error {
	for _, path := range paths {
		if _, err := rt.ModuleLoad(p, path); err != nil {
			return err
		}
	}
	return nil
}

// ModuleBytes returns the container size of the resident module at path
// (0 when the module is not resident).
func (rt *Registry) ModuleBytes(path string) int64 {
	if m, ok := rt.sh.modules[path]; ok {
		return int64(m.Object.Size())
	}
	return 0
}

// LoadedCodeBytes returns the total container bytes of resident modules.
// The value is a running counter maintained on every residency change, not
// a walk of the module map.
func (rt *Registry) LoadedCodeBytes() int64 { return rt.sh.loadedBytes }
