package backend_test

import (
	"fmt"
	"testing"

	"pask/internal/backend"
	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/hip"
	"pask/internal/sim"
)

// benchStore materializes n code objects of the given payload size under
// predictable paths obj0.pko .. obj<n-1>.pko.
func benchStore(b testing.TB, n, codeSize int) *codeobj.Store {
	b.Helper()
	store := codeobj.NewStore()
	for i := 0; i < n; i++ {
		specs := []codeobj.KernelSpec{
			{Name: fmt.Sprintf("obj%d_main", i), Pattern: "GEMM", CodeSize: codeSize},
			{Name: fmt.Sprintf("obj%d_helper", i), Pattern: "GEMM", CodeSize: codeSize / 4},
		}
		if err := store.PutBuilt(benchPath(i), "gfx908", specs); err != nil {
			b.Fatal(err)
		}
	}
	return store
}

func benchPath(i int) string { return fmt.Sprintf("obj%d.pko", i) }

// benchRuntime builds a hip-flavored registry over the store on a device
// with the given code-memory budget (0 keeps the profile default).
func benchRuntime(store *codeobj.Store, codeMemory int64) (*sim.Env, *device.GPU, backend.Backend) {
	env := sim.NewEnv()
	prof := device.MI100()
	if codeMemory > 0 {
		prof.CodeMemory = codeMemory
	}
	gpu := device.NewGPU(env, prof)
	return env, gpu, hip.NewRuntime(env, gpu, device.DefaultHost(), store)
}

// runRegistryBench spawns the benchmark proc, runs the simulation and
// reports errors on the benchmark goroutine. Streams are closed on exit so
// the env drains.
func runRegistryBench(b *testing.B, env *sim.Env, gpu *device.GPU, fn func(p *sim.Proc) error) {
	b.Helper()
	var benchErr error
	env.Spawn("bench", func(p *sim.Proc) {
		defer gpu.CloseAll()
		benchErr = fn(p)
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	if benchErr != nil {
		b.Fatal(benchErr)
	}
}

// BenchmarkRegistryLoadHit measures the registry's resident-module fast
// path: the answer every warmed tenant gets per kernel launch.
func BenchmarkRegistryLoadHit(b *testing.B) {
	store := benchStore(b, 1, 8<<10)
	env, gpu, rt := benchRuntime(store, 0)
	path := benchPath(0)
	runRegistryBench(b, env, gpu, func(p *sim.Proc) error {
		if _, err := rt.ModuleLoad(p, path); err != nil {
			return err
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.ModuleLoad(p, path); err != nil {
				return err
			}
		}
		return nil
	})
}

// BenchmarkRegistryTenantHit is the hit path through an attached tenant
// view, which additionally pins the module — the shape fleet serving hits.
func BenchmarkRegistryTenantHit(b *testing.B) {
	store := benchStore(b, 1, 8<<10)
	env, gpu, root := benchRuntime(store, 0)
	rt := root.Attach("bench-tenant")
	path := benchPath(0)
	runRegistryBench(b, env, gpu, func(p *sim.Proc) error {
		if _, err := rt.ModuleLoad(p, path); err != nil {
			return err
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.ModuleLoad(p, path); err != nil {
				return err
			}
		}
		return nil
	})
}

// BenchmarkRegistryLoadMiss measures the full load path — store read,
// parse, relocation accounting, residency bookkeeping — by evicting the
// module before each load.
func BenchmarkRegistryLoadMiss(b *testing.B) {
	store := benchStore(b, 1, 8<<10)
	env, gpu, rt := benchRuntime(store, 0)
	path := benchPath(0)
	runRegistryBench(b, env, gpu, func(p *sim.Proc) error {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.ModuleLoad(p, path); err != nil {
				return err
			}
			b.StopTimer()
			rt.Unload(path)
			b.StartTimer()
		}
		return nil
	})
}

// BenchmarkRegistryEvict measures loading under code-memory pressure: a
// budget that holds ~8 of 32 objects forces the LRU evictor to run on every
// load, the churn edge devices pay (paper §I).
func BenchmarkRegistryEvict(b *testing.B) {
	const nObjs = 32
	store := benchStore(b, nObjs, 8<<10)
	// Each container is ~10 KB; budget 8 of them.
	env, gpu, rt := benchRuntime(store, 80<<10)
	runRegistryBench(b, env, gpu, func(p *sim.Proc) error {
		// Warm the working set once so the budget is saturated.
		for i := 0; i < nObjs; i++ {
			if _, err := rt.ModuleLoad(p, benchPath(i)); err != nil {
				return err
			}
		}
		paths := make([]string, nObjs)
		for i := range paths {
			paths[i] = benchPath(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.ModuleLoad(p, paths[i%nObjs]); err != nil {
				return err
			}
		}
		return nil
	})
}
