package backend_test

import (
	"testing"

	"pask/internal/sim"
)

// TestLoadedCodeBytesCounterStaysConsistent churns the registry through
// load, forced unload, reset and eviction-pressure cycles and asserts the
// O(1) LoadedCodeBytes counter always equals a fresh walk of the resident
// modules.
func TestLoadedCodeBytesCounterStaysConsistent(t *testing.T) {
	const nObjs = 16
	store := benchStore(t, nObjs, 8<<10)
	// Budget ~5 containers so loads beyond that evict.
	env, gpu, rt := benchRuntime(store, 50<<10)

	recompute := func() int64 {
		var n int64
		for _, path := range rt.ResidentPaths() {
			n += rt.ModuleBytes(path)
		}
		return n
	}
	check := func(stage string) {
		if got, want := rt.LoadedCodeBytes(), recompute(); got != want {
			t.Fatalf("%s: LoadedCodeBytes = %d, recomputed %d", stage, got, want)
		}
	}

	env.Spawn("churn", func(p *sim.Proc) {
		defer gpu.CloseAll()
		for i := 0; i < nObjs; i++ {
			if _, err := rt.ModuleLoad(p, benchPath(i)); err != nil {
				t.Errorf("load %d: %v", i, err)
				return
			}
			check("load")
		}
		rt.Unload(benchPath(nObjs - 1))
		check("unload")
		rt.UnloadAll()
		check("reset")
		if _, err := rt.RegisterResident(p, benchPath(0)); err != nil {
			t.Errorf("register resident: %v", err)
			return
		}
		check("resident")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Evictions == 0 {
		t.Fatal("expected eviction pressure during churn")
	}
}
