// Package conformancetest is the shared invariant suite every device backend
// must pass — the contract that makes internal/backend.Backend pluggable.
// The registry semantics the paper's runtime relies on (proactive residency,
// selective loading, negative caching of broken objects, LRU eviction under
// the §I code-memory pressure, tenant pinning, device reset) are
// flavor-independent: hip and cuda differ in error texts, retry posture and
// where per-symbol resolution cost lands, never in these behaviors. Each
// driver package runs Run against its own constructor from a normal test, so
// a new backend (or a regression in the generic registry) fails the same
// table of checks in every flavor; see DESIGN.md §15.
//
// Paper anchor: §III-B/C registry invariants held flavor-independent across the §II-A driver stacks (DESIGN.md §15).
package conformancetest

import (
	"strings"
	"testing"
	"time"

	"pask/internal/backend"
	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/sim"
)

// Factory builds the backend under test over the given simulated device and
// store — typically hip.NewRuntime or cuda.NewRuntime.
type Factory func(env *sim.Env, gpu *device.GPU, host device.HostProfile, store *codeobj.Store) backend.Backend

// profile is a deliberately round-numbered device so cost assertions are
// exact: 1ms fixed load, 100MB/s load bandwidth, 100µs per symbol.
func profile() device.Profile {
	return device.Profile{
		Name: "conformance", Arch: "gfx908",
		PeakFlops: 1e12, MemBW: 1e11, PCIeBW: 1e10,
		LaunchLatency: 10 * time.Microsecond, KernelOverhead: 5 * time.Microsecond,
		ModuleLoadFixed: time.Millisecond, ModuleLoadBW: 1e8,
		SymbolResolve: 100 * time.Microsecond, ContextInit: 50 * time.Millisecond,
		CodeMemory: 1 << 30,
	}
}

func store(t *testing.T) *codeobj.Store {
	t.Helper()
	s := codeobj.NewStore()
	for _, spec := range []struct {
		path string
		ks   []codeobj.KernelSpec
	}{
		{"conv_a.pko", []codeobj.KernelSpec{
			{Name: "conv_a_main", Pattern: "Winograd", CodeSize: 100000},
			{Name: "conv_a_xform", Pattern: "Winograd", CodeSize: 20000},
		}},
		{"conv_b.pko", []codeobj.KernelSpec{
			{Name: "conv_b_main", Pattern: "GEMM", CodeSize: 50000},
		}},
		{"conv_c.pko", []codeobj.KernelSpec{
			{Name: "conv_c_main", Pattern: "Direct", CodeSize: 60000},
		}},
	} {
		if err := s.PutBuilt(spec.path, "gfx908", spec.ks); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// harness is one fresh backend over one fresh env/store, plus a runner that
// drives fn as the host process and fails the test on simulation errors.
type harness struct {
	env   *sim.Env
	store *codeobj.Store
	rt    backend.Backend
}

func newHarness(t *testing.T, factory Factory, prof device.Profile) *harness {
	t.Helper()
	env := sim.NewEnv()
	st := store(t)
	gpu := device.NewGPU(env, prof)
	return &harness{env: env, store: st, rt: factory(env, gpu, device.DefaultHost(), st)}
}

func (h *harness) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	h.env.Spawn("host", func(p *sim.Proc) {
		defer h.rt.GPU().CloseAll()
		fn(p)
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
}

// flakyReads fails the first n store reads of every path with a transient
// I/O error, then passes bytes through.
type flakyReads struct{ n int }

func (f *flakyReads) StoreGet(path string, data []byte) ([]byte, error) {
	if f.n > 0 {
		f.n--
		return nil, codeobj.ErrIO
	}
	return data, nil
}

// Run drives the full conformance table against the backend the factory
// builds. Every subtest gets a fresh simulation, device and store.
func Run(t *testing.T, factory Factory) {
	for _, tc := range []struct {
		name string
		prof device.Profile
		fn   func(t *testing.T, h *harness)
	}{
		{"load-then-hit", profile(), testLoadThenHit},
		{"symbol-cost-invariant", profile(), testSymbolCostInvariant},
		{"transient-retry", profile(), testTransientRetry},
		{"retry-disable", profile(), testRetryDisable},
		{"negative-cache", profile(), testNegativeCache},
		{"evict-lru", evictionProfile(), testEvictLRU},
		{"pin-protects", evictionProfile(), testPinProtects},
		{"reset-spares-residents", profile(), testResetSparesResidents},
		{"coalesce-inflight", profile(), testCoalesceInflight},
		{"device-lost", profile(), testDeviceLost},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.fn(t, newHarness(t, factory, tc.prof))
		})
	}
}

// evictionProfile fits conv_a but not conv_a+conv_b: loading the second
// object must evict the first.
func evictionProfile() device.Profile {
	p := profile()
	p.CodeMemory = 135000
	return p
}

// A cold load charges virtual time and counts one store load; the repeat
// call is free and counts a hit.
func testLoadThenHit(t *testing.T, h *harness) {
	h.run(t, func(p *sim.Proc) {
		start := p.Now()
		m, err := h.rt.ModuleLoad(p, "conv_a.pko")
		if err != nil {
			t.Fatal(err)
		}
		if p.Now() == start {
			t.Error("cold load charged no virtual time")
		}
		if m.Path != "conv_a.pko" || m.Object.NumSymbols() != 2 {
			t.Errorf("module = %+v", m)
		}
		again := p.Now()
		if _, err := h.rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Fatal(err)
		}
		if p.Now() != again {
			t.Errorf("warm load charged %v", p.Now()-again)
		}
	})
	st := h.rt.Stats()
	size := int64(h.store.Size("conv_a.pko"))
	if st.ModuleLoads != 1 || st.LoadHits != 1 || st.BytesLoaded != size {
		t.Fatalf("stats = %+v", st)
	}
	if !h.rt.Loaded("conv_a.pko") || h.rt.NumLoaded() != 1 {
		t.Fatal("module not tracked as loaded")
	}
}

// Load plus the first resolution of every symbol costs exactly
// LoadTime(size, numSymbols) no matter where the flavor charges the symbol
// part (eager: inside the load; lazy: at first lookup). Re-resolving is free
// either way.
func testSymbolCostInvariant(t *testing.T, h *harness) {
	h.run(t, func(p *sim.Proc) {
		start := p.Now()
		m, err := h.rt.ModuleLoad(p, "conv_a.pko")
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"conv_a_main", "conv_a_xform"} {
			if _, err := h.rt.ModuleGetFunction(p, m, name); err != nil {
				t.Fatal(err)
			}
		}
		elapsed := p.Now() - start
		want := profile().LoadTime(int64(h.store.Size("conv_a.pko")), 2)
		if elapsed != want {
			t.Errorf("load+resolve all symbols took %v, want %v", elapsed, want)
		}
		before := p.Now()
		if _, err := h.rt.ModuleGetFunction(p, m, "conv_a_main"); err != nil {
			t.Fatal(err)
		}
		if p.Now() != before {
			t.Errorf("repeat resolution charged %v", p.Now()-before)
		}
		if _, err := h.rt.ModuleGetFunction(p, m, "no_such_kernel"); err == nil {
			t.Error("missing symbol must fail")
		}
	})
}

// Transient store faults are retried under the policy and succeed without
// poisoning the negative cache.
func testTransientRetry(t *testing.T, h *harness) {
	h.store.SetFaultHook(&flakyReads{n: 2})
	h.rt.SetRetry(backend.RetryPolicy{MaxRetries: 3, Backoff: 10 * time.Microsecond, MaxBackoff: time.Millisecond})
	h.run(t, func(p *sim.Proc) {
		if _, err := h.rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Fatalf("load did not survive transient faults: %v", err)
		}
	})
	st := h.rt.Stats()
	if st.TransientRetries != 2 || st.ModuleLoads != 1 || st.PermanentFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if h.rt.FailedPermanently("conv_a.pko") {
		t.Fatal("transient failure must not be negatively cached")
	}
}

// MaxRetries < 0 disables retrying: the first transient fault surfaces, and
// it is still not negatively cached (a later call may succeed).
func testRetryDisable(t *testing.T, h *harness) {
	h.store.SetFaultHook(&flakyReads{n: 1})
	h.rt.SetRetry(backend.RetryPolicy{MaxRetries: -1})
	h.run(t, func(p *sim.Proc) {
		if _, err := h.rt.ModuleLoad(p, "conv_a.pko"); err == nil {
			t.Fatal("disabled retry must surface the transient fault")
		} else if !backend.IsTransient(err) {
			t.Fatalf("error lost its transient marker: %v", err)
		}
		if _, err := h.rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Fatalf("recovered store must load: %v", err)
		}
	})
	if st := h.rt.Stats(); st.TransientRetries != 0 || st.FailedLoads != 1 || st.NegativeHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Permanent failures are negatively cached: the repeat call fails instantly
// without touching the store, and ForgetFailure plus an in-place repair
// makes the next load succeed. The error text carries the flavor's driver
// prefix.
func testNegativeCache(t *testing.T, h *harness) {
	if err := h.store.Corrupt("conv_b.pko", 20); err != nil {
		t.Fatal(err)
	}
	h.run(t, func(p *sim.Proc) {
		_, err := h.rt.ModuleLoad(p, "conv_b.pko")
		if err == nil {
			t.Fatal("corrupt object must fail to load")
		}
		if !strings.Contains(err.Error(), h.rt.Driver()) {
			t.Errorf("error %q does not name driver %q", err, h.rt.Driver())
		}
		if !h.rt.FailedPermanently("conv_b.pko") {
			t.Fatal("permanent failure not negatively cached")
		}
		before := p.Now()
		if _, err := h.rt.ModuleLoad(p, "conv_b.pko"); err == nil {
			t.Fatal("negative cache must keep failing")
		}
		if p.Now() != before {
			t.Errorf("negative hit charged %v", p.Now()-before)
		}
		if !h.rt.ForgetFailure("conv_b.pko") {
			t.Fatal("ForgetFailure found nothing to forget")
		}
		if err := h.store.PutBuilt("conv_b.pko", "gfx908",
			[]codeobj.KernelSpec{{Name: "conv_b_main", Pattern: "GEMM", CodeSize: 50000}}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.rt.ModuleLoad(p, "conv_b.pko"); err != nil {
			t.Fatalf("repaired object must load: %v", err)
		}
	})
	if st := h.rt.Stats(); st.PermanentFailures != 1 || st.NegativeHits != 1 || st.ModuleLoads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Under code-memory pressure the least-recently-used unpinned module is
// evicted, and reloading it pays the full cold cost again.
func testEvictLRU(t *testing.T, h *harness) {
	h.run(t, func(p *sim.Proc) {
		if _, err := h.rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Fatal(err)
		}
		if _, err := h.rt.ModuleLoad(p, "conv_b.pko"); err != nil {
			t.Fatal(err)
		}
		if h.rt.Loaded("conv_a.pko") {
			t.Fatal("conv_a should have been evicted for conv_b")
		}
		start := p.Now()
		if _, err := h.rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Fatal(err)
		}
		if p.Now() == start {
			t.Error("reload after eviction must charge time")
		}
	})
	if st := h.rt.Stats(); st.Evictions == 0 {
		t.Fatalf("stats = %+v: no evictions under pressure", st)
	}
}

// Tenant pins guard modules from eviction; PinnedPaths is sorted; Detach
// releases the pins and makes the module evictable again.
func testPinProtects(t *testing.T, h *harness) {
	ten := h.rt.Attach("t0")
	h.run(t, func(p *sim.Proc) {
		if _, err := ten.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Fatal(err)
		}
		// conv_a is pinned: conv_b must not displace it even though the
		// budget overshoots.
		if _, err := ten.ModuleLoad(p, "conv_b.pko"); err != nil {
			t.Fatal(err)
		}
		if !h.rt.Loaded("conv_a.pko") || !h.rt.Loaded("conv_b.pko") {
			t.Fatal("pinned modules must survive memory pressure")
		}
		got := ten.PinnedPaths()
		if len(got) != 2 || got[0] != "conv_a.pko" || got[1] != "conv_b.pko" {
			t.Fatalf("PinnedPaths = %v, want sorted [conv_a.pko conv_b.pko]", got)
		}
		if h.rt.Refs("conv_a.pko") != 1 {
			t.Fatalf("Refs(conv_a) = %d", h.rt.Refs("conv_a.pko"))
		}
		ten.Detach()
		if !ten.Detached() || h.rt.Refs("conv_a.pko") != 0 {
			t.Fatal("Detach must release pins")
		}
		// Unpinned now: the next load may evict.
		if _, err := h.rt.ModuleLoad(p, "conv_c.pko"); err != nil {
			t.Fatal(err)
		}
	})
	if st := h.rt.Stats(); st.Evictions == 0 {
		t.Fatalf("stats = %+v: detached modules must be evictable", st)
	}
}

// UnloadAll models a device reset that keeps the process alive: mapped
// resident modules survive, dynamically loaded ones are dropped and reload
// on next use.
func testResetSparesResidents(t *testing.T, h *harness) {
	h.run(t, func(p *sim.Proc) {
		if _, err := h.rt.RegisterResident(p, "conv_a.pko"); err != nil {
			t.Fatal(err)
		}
		if _, err := h.rt.ModuleLoad(p, "conv_b.pko"); err != nil {
			t.Fatal(err)
		}
		h.rt.UnloadAll()
		if !h.rt.Loaded("conv_a.pko") {
			t.Fatal("resident module must survive reset")
		}
		if h.rt.Loaded("conv_b.pko") {
			t.Fatal("loaded module must be dropped by reset")
		}
		if got := h.rt.ResidentPaths(); len(got) != 1 || got[0] != "conv_a.pko" {
			t.Fatalf("ResidentPaths = %v", got)
		}
		start := p.Now()
		if _, err := h.rt.ModuleLoad(p, "conv_b.pko"); err != nil {
			t.Fatal(err)
		}
		if p.Now() == start {
			t.Error("post-reset reload must charge time")
		}
	})
	if st := h.rt.Stats(); st.ModuleLoads != 2 {
		t.Fatalf("stats = %+v: want exactly two paid loads", st)
	}
}

// Concurrent loads of one path coalesce onto a single store read: the
// laggard waits for the in-flight load instead of paying its own.
func testCoalesceInflight(t *testing.T, h *harness) {
	var doneA, doneB time.Duration
	h.env.Spawn("loaderA", func(p *sim.Proc) {
		if _, err := h.rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Error(err)
		}
		doneA = p.Now()
	})
	h.env.Spawn("loaderB", func(p *sim.Proc) {
		p.Sleep(time.Microsecond)
		if _, err := h.rt.ModuleLoad(p, "conv_a.pko"); err != nil {
			t.Error(err)
		}
		doneB = p.Now()
		h.rt.GPU().CloseAll()
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
	if doneA != doneB {
		t.Fatalf("coalesced loads finished at %v and %v, want same instant", doneA, doneB)
	}
	if st := h.rt.Stats(); st.ModuleLoads != 1 || st.CoalescedWaits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// A lost device is terminal: everything resident (mapped residents included)
// is gone, further loads fail instantly with the flavor's typed device-lost
// error, the failure is never negatively cached, and an UnloadAll-style
// reset — the recovery that handles driver preemption — does not resurrect
// the device.
func testDeviceLost(t *testing.T, h *harness) {
	h.run(t, func(p *sim.Proc) {
		if _, err := h.rt.RegisterResident(p, "conv_a.pko"); err != nil {
			t.Fatal(err)
		}
		if _, err := h.rt.ModuleLoad(p, "conv_b.pko"); err != nil {
			t.Fatal(err)
		}
		h.rt.MarkDeviceLost()
		if !h.rt.DeviceLost() {
			t.Fatal("DeviceLost must report true after MarkDeviceLost")
		}
		if h.rt.NumLoaded() != 0 || h.rt.Loaded("conv_a.pko") {
			t.Fatal("device loss must drop every module, residents included")
		}
		before := p.Now()
		_, err := h.rt.ModuleLoad(p, "conv_b.pko")
		if err == nil {
			t.Fatal("load on a lost device must fail")
		}
		if !backend.IsDeviceLost(err) {
			t.Fatalf("error %v is not typed as device-lost", err)
		}
		if backend.IsTransient(err) {
			t.Fatalf("device-lost error %v must not look retriable", err)
		}
		if !strings.Contains(err.Error(), h.rt.Driver()) {
			t.Errorf("error %q does not name driver %q", err, h.rt.Driver())
		}
		if p.Now() != before {
			t.Errorf("lost-device load charged %v", p.Now()-before)
		}
		if h.rt.FailedPermanently("conv_b.pko") {
			t.Fatal("device loss must not poison the negative cache")
		}
		// ArmReset-style recovery: a reset never revives a lost device.
		h.rt.UnloadAll()
		if !h.rt.DeviceLost() {
			t.Fatal("reset must not clear the lost state")
		}
		if _, err := h.rt.ModuleLoad(p, "conv_b.pko"); !backend.IsDeviceLost(err) {
			t.Fatalf("post-reset load on lost device = %v, want device-lost", err)
		}
		if _, err := h.rt.RegisterResident(p, "conv_c.pko"); !backend.IsDeviceLost(err) {
			t.Fatalf("RegisterResident on lost device = %v, want device-lost", err)
		}
		h.rt.MarkDeviceLost() // idempotent
	})
	if st := h.rt.Stats(); st.FailedLoads != 2 || st.PermanentFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
