package backend_test

import (
	"errors"
	"testing"
	"time"

	"pask/internal/backend"
	"pask/internal/codeobj"
	"pask/internal/sim"
)

// staticPeer offers one resident object at a fixed cost, optionally marked
// link-faulted (err/stall) — the smallest PeerSource that exercises the
// registry's fallback path without a multi-GPU host.
type staticPeer struct {
	path  string
	obj   *codeobj.Object
	cost  time.Duration
	stall time.Duration
	err   error

	lookups int
}

func (s *staticPeer) PeerLookup(path string) (backend.PeerModule, bool) {
	if path != s.path {
		return backend.PeerModule{}, false
	}
	s.lookups++
	return backend.PeerModule{Object: s.obj, From: "peer", Cost: s.cost, Stall: s.stall, Err: s.err}, true
}

// A peer transfer that dies mid-flap must waste its stall, then fall back to
// a local demand load exactly once: one ModuleLoads, zero PeerFetches, one
// PeerFetchFails, and the module ends up resident anyway.
func TestPeerFetchFaultFallsBackToLocalLoadOnce(t *testing.T) {
	store := benchStore(t, 1, 8<<10)
	env, gpu, rt := benchRuntime(store, 0)
	path := benchPath(0)
	data, err := store.Get(path)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := codeobj.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	const stall = 3 * time.Millisecond
	peer := &staticPeer{path: path, obj: obj, stall: stall,
		err: errors.New("link down")}
	rt.SetPeers(peer)

	env.Spawn("host", func(p *sim.Proc) {
		defer gpu.CloseAll()
		start := p.Now()
		m, lerr := rt.ModuleLoad(p, path)
		if lerr != nil {
			t.Errorf("fallback load failed: %v", lerr)
			return
		}
		if m == nil || m.Path != path {
			t.Errorf("module = %+v", m)
		}
		if elapsed := p.Now() - start; elapsed < stall {
			t.Errorf("load took %v, want >= the %v link stall", elapsed, stall)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}

	st := rt.Stats()
	if st.PeerFetchFails != 1 {
		t.Errorf("PeerFetchFails = %d, want 1", st.PeerFetchFails)
	}
	if st.PeerFetches != 0 || st.PeerBytes != 0 {
		t.Errorf("failed transfer counted as a peer fetch: %+v", st)
	}
	if st.ModuleLoads != 1 || st.FailedLoads != 0 {
		t.Errorf("fallback must be exactly one local load: %+v", st)
	}
	if peer.lookups != 1 {
		t.Errorf("peer consulted %d times, want 1", peer.lookups)
	}
	if !rt.Loaded(path) {
		t.Error("module not resident after fallback")
	}
}

// A stalled-but-alive link stretches the transfer without failing it: still
// one PeerFetches, zero ModuleLoads, zero PeerFetchFails.
func TestPeerFetchStallCompletes(t *testing.T) {
	store := benchStore(t, 1, 8<<10)
	env, gpu, rt := benchRuntime(store, 0)
	path := benchPath(0)
	data, err := store.Get(path)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := codeobj.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	const stall = 2 * time.Millisecond
	rt.SetPeers(&staticPeer{path: path, obj: obj, cost: time.Microsecond, stall: stall})

	env.Spawn("host", func(p *sim.Proc) {
		defer gpu.CloseAll()
		start := p.Now()
		if _, lerr := rt.ModuleLoad(p, path); lerr != nil {
			t.Errorf("stalled peer fetch failed: %v", lerr)
			return
		}
		if elapsed := p.Now() - start; elapsed < stall {
			t.Errorf("fetch took %v, want >= the %v stall", elapsed, stall)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.PeerFetches != 1 || st.ModuleLoads != 0 || st.PeerFetchFails != 0 {
		t.Errorf("stats = %+v, want exactly one peer fetch", st)
	}
}
