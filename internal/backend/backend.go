// Package backend defines the pluggable device-backend seam of the simulated
// stack: the Backend interface every layer above the driver consumes, and the
// generic per-GPU module Registry that implements it. The paper's evaluation
// spans ROCm (MI100, RX 6900 XT) and CUDA (A100) devices whose drivers share
// the *lazy loading* semantics that cause DNN cold start (paper §II-A, Fig 3)
// but differ in error surfaces, retry posture and where symbol-resolution
// cost lands. Those driver-specific parts live in a Flavor; internal/hip and
// internal/cuda are the two flavors, and everything above — core, graphx,
// blas, miopen, warmup, serving — holds a Backend and never names a driver.
//
// The registry semantics are the multi-tenant ones of §III-B/C: the unit of
// kernel residency is the GPU, not the OS process. New creates the *root
// view* of a shared module registry and Attach hands out refcounted tenant
// views over the same state; loaded modules, the in-flight load table
// (singleflight dedup), the negative cache and the retry policy are shared
// across views. A PeerSource, when installed, lets a load miss be served by
// a neighbor GPU's resident copy over the host's PCIe/NUMA link model when
// that transfer is cheaper than re-reading the store — the cross-GPU cache
// peering the placement layer builds on.
//
// Paper anchor: §II-A lazy loading (Fig 3) and the §III-B/C shared-residency registry; flavor split is the DESIGN.md §15 substitution.
package backend

import (
	"errors"
	"time"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/sim"
)

// ErrDeviceLost is the sentinel wrapped by every flavor's DeviceLostError:
// the GPU fell off the bus and the registry is terminal. Unlike transient
// store errors it is not retriable, and unlike permanent object errors it is
// not negatively cached — the object is fine, the device is gone.
var ErrDeviceLost = errors.New("device lost")

// IsDeviceLost reports whether err is (or wraps) a device-lost failure.
func IsDeviceLost(err error) bool { return errors.Is(err, ErrDeviceLost) }

// Module is a loaded code object registered in device memory.
type Module struct {
	Path     string
	Object   *codeobj.Object
	LoadedAt time.Duration
	// lastUsed drives LRU eviction under device code-memory pressure.
	lastUsed time.Duration
	// resident modules live inside the library binary and are never evicted.
	resident bool
	// resolved tracks symbols whose resolution cost has been charged, for
	// flavors that defer it to first use (CUDA lazy module loading). Nil for
	// eager flavors.
	resolved map[string]bool
}

// Function is a resolved kernel symbol inside a loaded module.
type Function struct {
	Module *Module
	Kernel codeobj.Kernel
}

// Name returns the kernel's global symbol name.
func (f *Function) Name() string { return f.Kernel.Name }

// Stats aggregates the shared registry's loading activity across all views.
type Stats struct {
	ModuleLoads       int           // completed store loads (cache misses)
	LoadHits          int           // ModuleLoad calls satisfied by the registry
	BytesLoaded       int64         // container bytes read and relocated
	LoadTimeTotal     time.Duration // virtual time spent inside loads
	FailedLoads       int
	Evictions         int // modules dropped under code-memory pressure
	TransientRetries  int // load attempts repeated after a retriable error
	PermanentFailures int // loads negatively cached (parse/arch/missing)
	NegativeHits      int // ModuleLoad calls answered from the negative cache
	CoalescedWaits    int // callers that waited on another view's in-flight load
	PeerFetches       int // misses served by a neighbor GPU's resident copy
	PeerBytes         int64
	PeerFetchFails    int // peer transfers that failed (link fault) and fell back to a local load
}

// TenantStats attributes a shared runtime's loading activity to one view —
// the accounting multi-tenant serving reports per tenant. Loads counts the
// loads this view initiated and paid for; SharedHits the calls answered by a
// module already resident (loaded earlier, possibly by another tenant);
// CoalescedWaits the calls that blocked on another view's in-flight load of
// the same object and got the result without paying the load itself;
// PeerFetches the misses this view resolved from a neighbor GPU instead of
// the store.
type TenantStats struct {
	Tenant         string
	Loads          int
	BytesLoaded    int64
	LoadTime       time.Duration
	SharedHits     int
	CoalescedWaits int
	FailedLoads    int
	NegativeHits   int
	PeerFetches    int
	Pinned         int // modules currently pinned by this view
}

// IsTransient reports whether a load error is retriable (a store I/O
// hiccup) rather than permanent (missing object, parse failure, arch
// mismatch). Only permanent errors are negatively cached.
func IsTransient(err error) bool { return codeobj.IsTransient(err) }

// RetryPolicy bounds the transient-error retry loop inside ModuleLoad.
type RetryPolicy struct {
	MaxRetries int           // extra attempts after the first; negative disables retry
	Backoff    time.Duration // virtual-time sleep before the first retry
	MaxBackoff time.Duration // cap for the doubling backoff
}

// LoadFaultInjector adds latency to module loads — the seam the faults
// package uses for load-time spikes and windowed slow-loader brownouts (the
// virtual start time of the load is passed so injectors can gate on it). A
// nil injector costs nothing.
type LoadFaultInjector interface {
	ExtraLoadLatency(now time.Duration, path string) time.Duration
}

// LoadLatencyScaler is an optional LoadFaultInjector extension: a multiplier
// (>= 1) applied to the modeled load time of a load starting at now — the
// ECC-degradation seam, where a sick GPU loads slower rather than later.
type LoadLatencyScaler interface {
	LoadLatencyScale(now time.Duration) float64
}

// LoadErrorInjector is an optional LoadFaultInjector extension: an injected
// read error for a load starting at now (nil for none). Errors wrapping
// codeobj.ErrIO are transient and face the normal retry machinery.
type LoadErrorInjector interface {
	ExtraLoadError(now time.Duration, path string) error
}

// RegistryObserver receives the shared registry's notable moments — the seam
// the trace recorder implements. RegistryEvent marks instants (kind is one of
// "evict", "coalesced_wait", "negative_hit", "transient_retry", "peer_fetch",
// "peer_fetch_fail", "unload", "reset", "device_lost"); RegistrySample
// carries gauge samples
// ("<driver>_resident_bytes", "<driver>_resident_modules"). Both are called
// with the registry's virtual time.
type RegistryObserver interface {
	RegistryEvent(kind, path string, at time.Duration)
	RegistrySample(name string, at time.Duration, value float64)
}

// OnLoadFunc observes every completed module load (or peer fetch) a view
// initiated; start/end are virtual times.
type OnLoadFunc func(path string, start, end time.Duration, err error)

// PeerModule is a neighbor GPU's resident copy of a code object, offered to
// a loading registry together with the cost of moving it over the host's
// interconnect. A source aware of link health can mark the transfer doomed
// (Err) or stretched (Stall): the registry pays Stall, then either completes
// the fetch or — on Err — falls back to a local demand load exactly once.
type PeerModule struct {
	Object *codeobj.Object
	From   string        // peer identifier, for traces
	Cost   time.Duration // transfer time over the link model
	Stall  time.Duration // extra link delay before the outcome lands
	Err    error         // non-nil: the transfer fails after Stall
}

// PeerSource answers residency queries against neighbor GPUs. PeerLookup
// returns the cheapest peer copy of path, if any peer of a compatible
// architecture holds it resident. The registry only takes the peer path when
// the offered cost undercuts its own store-load estimate.
type PeerSource interface {
	PeerLookup(path string) (PeerModule, bool)
}

// Flavor captures the driver-specific surface of a backend: its name, its
// error texts, its default retry posture and where per-symbol resolution
// cost lands. The generic Registry implements the shared semantics
// (residency, singleflight dedup, negative caching, LRU eviction, tenant
// pinning); a Flavor turns it into a concrete driver. internal/hip and
// internal/cuda are the implementations.
type Flavor interface {
	// Driver names the backend ("hip", "cuda"); it prefixes trace gauge
	// series and identifies the flavor in experiment output.
	Driver() string
	// DefaultRetry is the policy used when SetRetry was never called.
	DefaultRetry() RetryPolicy
	// LazySymbols reports whether per-symbol resolution cost is deferred
	// from module load to the first lookup of each symbol (the CUDA
	// lazy-module-loading behavior); eager drivers charge it inside the
	// load.
	LazySymbols() bool

	// LoadError decorates a store-read failure during ModuleLoad.
	LoadError(path string, cause error) error
	// ParseError decorates a rejected container during ModuleLoad.
	ParseError(path string, cause error) error
	// ArchError reports an object whose ISA does not match the device.
	ArchError(path, objArch, devArch string) error
	// SymbolError reports a kernel symbol missing from a loaded module.
	SymbolError(name, module string) error
	// ResidentLoadError decorates a store-read failure during
	// RegisterResident; ResidentParseError a rejected container there.
	ResidentLoadError(path string, cause error) error
	ResidentParseError(path string, cause error) error
	// DeviceLostError is the driver's rendering of a dead device (wrapping
	// backend.ErrDeviceLost); every call on a lost registry returns it.
	DeviceLostError() error
}

// Backend is the device-backend handle every layer above the driver holds:
// one view of a GPU's shared module registry plus the device, host-cost and
// clock accessors the executors charge time against. New returns the root
// view; Attach returns additional refcounted tenant views over the same
// shared state.
type Backend interface {
	// Driver returns the flavor name ("hip", "cuda").
	Driver() string
	// Env returns the simulation environment the backend runs in.
	Env() *sim.Env
	// GPU returns the device this backend registers modules on.
	GPU() *device.GPU
	// Host returns the host-side framework cost profile.
	Host() device.HostProfile
	// Store returns the backing code-object store.
	Store() *codeobj.Store

	// InitContext creates the GPU context, charging the device's context
	// initialization cost once per shared runtime; ContextReady reports
	// whether it has completed.
	InitContext(p *sim.Proc)
	ContextReady() bool

	// ModuleLoad returns the module at path, loading it if absent;
	// GetFunction additionally resolves a kernel symbol (loading lazily —
	// the reactive path the paper attributes cold start to), and
	// ModuleGetFunction resolves a symbol in an already-loaded module.
	ModuleLoad(p *sim.Proc, path string) (*Module, error)
	GetFunction(p *sim.Proc, path, name string) (*Function, error)
	ModuleGetFunction(p *sim.Proc, m *Module, name string) (*Function, error)
	// RegisterResident maps a code object that ships inside an already-open
	// shared library, charging only the cheap mapping cost.
	RegisterResident(p *sim.Proc, path string) (*Module, error)
	// Preload loads every listed module, stopping at the first error.
	Preload(p *sim.Proc, paths []string) error

	// Residency queries.
	Loaded(path string) bool
	NumLoaded() int
	ModuleBytes(path string) int64
	LoadedCodeBytes() int64
	// ResidentObject returns the parsed object of a resident module — the
	// bytes a peering neighbor serves. ResidentPaths lists resident module
	// paths, sorted.
	ResidentObject(path string) (*codeobj.Object, bool)
	ResidentPaths() []string

	// Unload evicts one module (ignoring pins: forced device-side
	// eviction); UnloadAll models a device reset that keeps the process
	// and its mapped library binary alive.
	Unload(path string) bool
	UnloadAll()

	// MarkDeviceLost drops the GPU off the bus: every resident module
	// (residents included) is gone and every subsequent load fails
	// instantly with the flavor's DeviceLostError. Terminal — UnloadAll
	// resets do not revive a lost device. DeviceLost reports the state.
	MarkDeviceLost()
	DeviceLost() bool

	// Tenant views. Attach creates a refcounted view over the shared
	// state; Detach releases the view's eviction pins; Refs/PinnedPaths
	// expose pin state (PinnedPaths sorted); NumViews counts views
	// including the root.
	Attach(name string) Backend
	Detach()
	Detached() bool
	Tenant() string
	Refs(path string) int
	PinnedPaths() []string
	NumViews() int

	// Accounting. AllTenantStats returns the root view first, then every
	// tenant view sorted by name — a deterministic order under multi-GPU
	// fan-out.
	Stats() Stats
	TenantStats() TenantStats
	AllTenantStats() []TenantStats

	// Shared configuration seams (registry-wide, across all views).
	SetRetry(RetryPolicy)
	SetLoadFaults(LoadFaultInjector)
	SetObserver(RegistryObserver)
	SetPeers(PeerSource)
	// SetOnLoad observes every completed load this view initiated (per
	// view, for the metrics tracer).
	SetOnLoad(OnLoadFunc)

	// Negative-cache management (operators repair objects in place; tenant
	// replacement clears the slate a fresh process would have).
	ForgetFailure(path string) bool
	ClearFailures() int
	FailedPermanently(path string) bool
}
