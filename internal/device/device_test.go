package device

import (
	"testing"
	"testing/quick"
	"time"

	"pask/internal/kernels"
	"pask/internal/sim"
)

func testProfile() Profile {
	return Profile{
		Name: "test", Arch: "t1",
		PeakFlops: 1e12, MemBW: 1e11, PCIeBW: 1e10,
		LaunchLatency: 10 * time.Microsecond, KernelOverhead: 5 * time.Microsecond,
		ModuleLoadFixed: time.Millisecond, ModuleLoadBW: 1e8,
		SymbolResolve: 100 * time.Microsecond, ContextInit: 100 * time.Millisecond,
		CodeMemory: 1 << 20,
	}
}

func TestKernelTimeRoofline(t *testing.T) {
	p := testProfile()
	// Compute bound: 1e9 flops at 1e12 flop/s = 1ms; bytes negligible.
	d := p.KernelTime(kernels.Workload{Flops: 1e9, Bytes: 1}, 1)
	if want := p.KernelOverhead + time.Millisecond; d != want {
		t.Fatalf("compute-bound = %v, want %v", d, want)
	}
	// Memory bound: 1e9 bytes at 1e11 B/s = 10ms dominates 1ms compute.
	d = p.KernelTime(kernels.Workload{Flops: 1e9, Bytes: 1e9}, 1)
	if want := p.KernelOverhead + 10*time.Millisecond; d != want {
		t.Fatalf("memory-bound = %v, want %v", d, want)
	}
	// Efficiency scales both.
	d = p.KernelTime(kernels.Workload{Flops: 1e9, Bytes: 1}, 0.5)
	if want := p.KernelOverhead + 2*time.Millisecond; d != want {
		t.Fatalf("half-efficiency = %v, want %v", d, want)
	}
}

func TestKernelTimePanicsOnBadEfficiency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testProfile().KernelTime(kernels.Workload{Flops: 1}, 0)
}

func TestLoadTime(t *testing.T) {
	p := testProfile()
	// 1e6 bytes at 1e8 B/s = 10ms, plus fixed 1ms, plus 3 symbols * 100us.
	d := p.LoadTime(1e6, 3)
	want := time.Millisecond + 10*time.Millisecond + 300*time.Microsecond
	if d != want {
		t.Fatalf("LoadTime = %v, want %v", d, want)
	}
}

func TestCopyTime(t *testing.T) {
	p := testProfile()
	if d := p.CopyTime(1e9); d != 100*time.Millisecond {
		t.Fatalf("CopyTime = %v", d)
	}
}

func TestStreamInOrderExecution(t *testing.T) {
	env := sim.NewEnv()
	g := NewGPU(env, testProfile())
	var order []string
	g.OnKernel = func(name string, start, end time.Duration) {
		order = append(order, name)
	}
	env.Spawn("host", func(p *sim.Proc) {
		g.DefaultStream().Launch(p, "k1", time.Millisecond)
		g.DefaultStream().Launch(p, "k2", time.Millisecond)
		done := g.DefaultStream().Launch(p, "k3", time.Millisecond)
		done.Wait(p)
		g.CloseAll()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "k1" || order[2] != "k3" {
		t.Fatalf("order = %v", order)
	}
}

func TestStreamAsyncLaunchReturnsBeforeCompletion(t *testing.T) {
	env := sim.NewEnv()
	g := NewGPU(env, testProfile())
	var launchReturned, kernelDone time.Duration
	env.Spawn("host", func(p *sim.Proc) {
		done := g.DefaultStream().Launch(p, "slow", 50*time.Millisecond)
		launchReturned = p.Now()
		done.Wait(p)
		kernelDone = p.Now()
		g.CloseAll()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if launchReturned != testProfile().LaunchLatency {
		t.Fatalf("launch returned at %v, want %v", launchReturned, testProfile().LaunchLatency)
	}
	if kernelDone != testProfile().LaunchLatency+50*time.Millisecond {
		t.Fatalf("kernel done at %v", kernelDone)
	}
}

func TestBusyTimeSingleStream(t *testing.T) {
	env := sim.NewEnv()
	g := NewGPU(env, testProfile())
	env.Spawn("host", func(p *sim.Proc) {
		g.DefaultStream().Launch(p, "a", 10*time.Millisecond)
		g.DefaultStream().Synchronize(p)
		p.Sleep(30 * time.Millisecond) // idle gap
		g.DefaultStream().Launch(p, "b", 5*time.Millisecond)
		g.DefaultStream().Synchronize(p)
		g.CloseAll()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if g.BusyTime() != 15*time.Millisecond {
		t.Fatalf("BusyTime = %v, want 15ms", g.BusyTime())
	}
	if g.KernelCount() != 2 {
		t.Fatalf("KernelCount = %d", g.KernelCount())
	}
}

func TestBusyTimeUnionAcrossStreams(t *testing.T) {
	env := sim.NewEnv()
	g := NewGPU(env, testProfile())
	s2 := g.NewStream()
	env.Spawn("h1", func(p *sim.Proc) {
		g.DefaultStream().Launch(p, "a", 20*time.Millisecond)
		g.DefaultStream().Synchronize(p)
	})
	env.Spawn("h2", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		s2.Launch(p, "b", 20*time.Millisecond)
		s2.Synchronize(p)
		g.CloseAll()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Overlapping [0,20] and [~10,~30]: union is ~30ms, not 40ms.
	got := g.BusyTime()
	if got < 29*time.Millisecond || got > 31*time.Millisecond {
		t.Fatalf("BusyTime = %v, want ~30ms (union, not sum)", got)
	}
}

func TestSynchronizeWaitsForAllPriorWork(t *testing.T) {
	env := sim.NewEnv()
	g := NewGPU(env, testProfile())
	var syncAt time.Duration
	env.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			g.DefaultStream().Launch(p, "k", 2*time.Millisecond)
		}
		g.DefaultStream().Synchronize(p)
		syncAt = p.Now()
		g.CloseAll()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	wantMin := 10 * time.Millisecond
	if syncAt < wantMin {
		t.Fatalf("sync returned at %v, want >= %v", syncAt, wantMin)
	}
}

func TestCopyUsesPCIeBandwidth(t *testing.T) {
	env := sim.NewEnv()
	g := NewGPU(env, testProfile())
	var done time.Duration
	env.Spawn("host", func(p *sim.Proc) {
		g.DefaultStream().Copy(p, "h2d", 1e9).Wait(p)
		done = p.Now()
		g.CloseAll()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := testProfile().LaunchLatency + 100*time.Millisecond
	if done != want {
		t.Fatalf("copy done at %v, want %v", done, want)
	}
}

func TestBuiltinProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("Profiles() returned %d entries", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.PeakFlops <= 0 || p.MemBW <= 0 || p.ModuleLoadBW <= 0 {
			t.Errorf("%s has non-positive rates", p.Name)
		}
		if p.ModuleLoadFixed <= 0 || p.ContextInit <= 0 {
			t.Errorf("%s has non-positive fixed costs", p.Name)
		}
		got, ok := ProfileByName(p.Name)
		if !ok || got.Arch != p.Arch {
			t.Errorf("ProfileByName(%q) = %+v, %v", p.Name, got, ok)
		}
	}
	for _, want := range []string{"MI100", "A100", "6900XT"} {
		if !names[want] {
			t.Errorf("missing profile %s", want)
		}
	}
	if _, ok := ProfileByName("H100"); ok {
		t.Error("unknown profile should not resolve")
	}
}

func TestDefaultHostProfilePositive(t *testing.T) {
	h := DefaultHost()
	if h.ParseInstr <= 0 || h.ApplicabilityCheck <= 0 || h.ModelOpen <= 0 ||
		h.CacheQueryFixed <= 0 || h.FindDBLookup <= 0 || h.SyncOverhead <= 0 {
		t.Fatalf("host profile has non-positive fields: %+v", h)
	}
	// The paper's premise: one applicability check is far cheaper than one
	// module load but expensive enough that exhaustive scans hurt.
	if h.ApplicabilityCheck >= MI100().ModuleLoadFixed {
		t.Fatal("applicability check should be much cheaper than a module load")
	}
}

// Property: KernelTime is monotonic in both flops and bytes.
func TestKernelTimeMonotonicProperty(t *testing.T) {
	p := testProfile()
	f := func(f1, f2, b1, b2 uint32) bool {
		w1 := kernels.Workload{Flops: int64(f1), Bytes: int64(b1)}
		w2 := kernels.Workload{Flops: int64(f1) + int64(f2), Bytes: int64(b1) + int64(b2)}
		return p.KernelTime(w2, 0.7) >= p.KernelTime(w1, 0.7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: LoadTime is monotonic in size and symbols and always at least
// the fixed cost.
func TestLoadTimeMonotonicProperty(t *testing.T) {
	p := testProfile()
	f := func(s1, s2 uint32, n1, n2 uint8) bool {
		a := p.LoadTime(int64(s1), int(n1))
		b := p.LoadTime(int64(s1)+int64(s2), int(n1)+int(n2))
		return b >= a && a >= p.ModuleLoadFixed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
