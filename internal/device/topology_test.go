package device

import (
	"testing"
	"time"

	"pask/internal/sim"
)

// The paper's three evaluation devices resolve by name, case-insensitively
// (Table I; flag values arrive in whatever case the operator typed).
func TestProfileByNamePinsPaperDevices(t *testing.T) {
	for _, tc := range []struct {
		name string
		want string
		arch string
	}{
		{"MI100", "MI100", "gfx908"},
		{"mi100", "MI100", "gfx908"},
		{"A100", "A100", "sm_80"},
		{"a100", "A100", "sm_80"},
		{"6900XT", "6900XT", "gfx1030"},
		{"6900xt", "6900XT", "gfx1030"},
	} {
		p, ok := ProfileByName(tc.name)
		if !ok {
			t.Fatalf("ProfileByName(%q) not found", tc.name)
		}
		if p.Name != tc.want || p.Arch != tc.arch {
			t.Fatalf("ProfileByName(%q) = %s/%s, want %s/%s", tc.name, p.Name, p.Arch, tc.want, tc.arch)
		}
	}
	if _, ok := ProfileByName("H100"); ok {
		t.Fatal("unknown device must not resolve")
	}
}

// Every registered profile round-trips through its own name, so the lookup
// map cannot silently drift from the profile list.
func TestProfileByNameCoversProfiles(t *testing.T) {
	for _, p := range Profiles() {
		got, ok := ProfileByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Fatalf("ProfileByName(%q) = %v/%v", p.Name, got.Name, ok)
		}
	}
}

// A multi-GPU host prices peer transfers by locality: same-NUMA links run at
// the endpoints' lower PCIe bandwidth with small latency, cross-node links
// pay the interconnect discount and higher latency.
func TestHostLinkModel(t *testing.T) {
	env := sim.NewEnv()
	h := NewHost(env)
	if i := h.AddGPU(MI100(), 0); i != 0 {
		t.Fatalf("first AddGPU index = %d", i)
	}
	h.AddGPU(MI100(), 0)
	h.AddGPU(A100(), 1)

	same := h.LinkBetween(0, 1)
	if same.Latency != 5*time.Microsecond {
		t.Fatalf("same-node latency = %v", same.Latency)
	}
	cross := h.LinkBetween(0, 2)
	if cross.Latency != 15*time.Microsecond {
		t.Fatalf("cross-node latency = %v", cross.Latency)
	}
	if cross.BW >= same.BW {
		t.Fatalf("cross-node BW %v not discounted below same-node %v", cross.BW, same.BW)
	}
	// Symmetry and monotonicity of the cost function.
	if h.PeerCopyTime(0, 2, 1<<20) != h.PeerCopyTime(2, 0, 1<<20) {
		t.Fatal("peer copy time must be symmetric")
	}
	if h.PeerCopyTime(0, 1, 1<<20) >= h.PeerCopyTime(0, 2, 1<<20) {
		t.Fatal("cross-node copy must cost more than same-node")
	}
	if h.PeerCopyTime(0, 1, 1<<10) >= h.PeerCopyTime(0, 1, 1<<20) {
		t.Fatal("copy time must grow with size")
	}
	h.CloseAll()
}

func TestHostLinkBetweenSelfPanics(t *testing.T) {
	env := sim.NewEnv()
	h := NewHost(env)
	h.AddGPU(MI100(), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("LinkBetween(i, i) must panic")
		}
		h.CloseAll()
	}()
	h.LinkBetween(0, 0)
}
