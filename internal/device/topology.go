package device

import (
	"fmt"
	"time"

	"pask/internal/sim"
)

// Link models one interconnect path between two GPUs: the bandwidth and
// fixed latency a peer-to-peer code-object transfer pays.
type Link struct {
	BW      float64       // bytes/s over the path
	Latency time.Duration // fixed setup cost per transfer
}

// Time returns the transfer time for n bytes over the link.
func (l Link) Time(n int64) time.Duration {
	if l.BW <= 0 {
		return l.Latency
	}
	return l.Latency + time.Duration(float64(n)/l.BW*float64(time.Second))
}

// crossNodeBWFactor discounts PCIe bandwidth when a transfer crosses the
// inter-socket link (the QPI/xGMI hop of a dual-socket EPYC host).
const crossNodeBWFactor = 0.6

// Fixed per-transfer setup latencies: DMA engine programming plus, across
// sockets, the extra hop through the IO die.
const (
	sameNodeLinkLatency  = 5 * time.Microsecond
	crossNodeLinkLatency = 15 * time.Microsecond
)

// HostGPU is one slot of a multi-GPU host: the device plus its NUMA
// placement.
type HostGPU struct {
	GPU  *GPU
	Node int // NUMA node the GPU's PCIe root complex hangs off
}

// Host models a multi-GPU server: N GPUs spread over NUMA nodes with a
// PCIe/NUMA link model between them. Peer transfers between GPUs on the same
// node ride a shared PCIe switch at the slower endpoint's bandwidth; across
// nodes they additionally cross the inter-socket link, discounting bandwidth
// and adding latency. The link model prices cross-GPU cache peering: fetching
// a neighbor's resident module instead of re-reading the store.
type Host struct {
	env  *sim.Env
	gpus []HostGPU
}

// NewHost creates an empty multi-GPU host.
func NewHost(env *sim.Env) *Host { return &Host{env: env} }

// AddGPU creates a GPU from prof on the given NUMA node and returns its
// index.
func (h *Host) AddGPU(prof Profile, node int) int {
	h.gpus = append(h.gpus, HostGPU{GPU: NewGPU(h.env, prof), Node: node})
	return len(h.gpus) - 1
}

// NumGPUs returns the number of GPUs installed.
func (h *Host) NumGPUs() int { return len(h.gpus) }

// GPU returns the device at index i.
func (h *Host) GPU(i int) *GPU { return h.gpus[i].GPU }

// Node returns the NUMA node of the GPU at index i.
func (h *Host) Node(i int) int { return h.gpus[i].Node }

// Env returns the simulation environment the host's devices run in.
func (h *Host) Env() *sim.Env { return h.env }

// LinkBetween returns the interconnect path between GPUs i and j. Same-node
// peers share a PCIe switch and run at the slower endpoint's PCIe bandwidth;
// cross-node peers pay the inter-socket discount and latency. i == j is an
// error in the caller's logic.
func (h *Host) LinkBetween(i, j int) Link {
	if i == j {
		panic(fmt.Sprintf("device: LinkBetween(%d, %d): self link", i, j))
	}
	bw := h.gpus[i].GPU.Profile.PCIeBW
	if b := h.gpus[j].GPU.Profile.PCIeBW; b < bw {
		bw = b
	}
	if h.gpus[i].Node == h.gpus[j].Node {
		return Link{BW: bw, Latency: sameNodeLinkLatency}
	}
	return Link{BW: bw * crossNodeBWFactor, Latency: crossNodeLinkLatency}
}

// PeerCopyTime returns the time to move n bytes from GPU i to GPU j over
// the host's link model.
func (h *Host) PeerCopyTime(i, j int, n int64) time.Duration {
	return h.LinkBetween(i, j).Time(n)
}

// CloseAll closes every stream of every GPU; used by experiments that need
// clean environment termination.
func (h *Host) CloseAll() {
	for _, g := range h.gpus {
		g.GPU.CloseAll()
	}
}
