package device

import (
	"strings"
	"time"
)

// Calibrated device profiles. Magnitudes follow public spec sheets (peak
// FLOPs, memory bandwidth) and measured driver behavior (module-load costs in
// the tens of milliseconds per code object, context creation in the hundreds
// of milliseconds). The loading constants are the calibration knobs for the
// Fig 1(a) cold/hot ratios: ROCm consumer parts load slowest (RX 6900 XT,
// 31.3x in the paper), CUDA data-center parts fastest (A100, 19.5x).

// MI100 models the AMD Instinct MI100 (gfx908, 32 GB, 120 CUs) under ROCm —
// the paper's primary testbed.
func MI100() Profile {
	return Profile{
		Name:            "MI100",
		Arch:            "gfx908",
		PeakFlops:       23.1e12,
		MemBW:           1.23e12,
		PCIeBW:          26e9,
		LaunchLatency:   25 * time.Microsecond,
		KernelOverhead:  75 * time.Microsecond,
		ModuleLoadFixed: 3 * time.Millisecond,
		ModuleLoadBW:    80e6,
		SymbolResolve:   120 * time.Microsecond,
		ContextInit:     90 * time.Millisecond,
		CodeMemory:      512 << 20,
	}
}

// A100 models the NVIDIA A100-SXM4-40GB under CUDA.
func A100() Profile {
	return Profile{
		Name:            "A100",
		Arch:            "sm_80",
		PeakFlops:       19.5e12,
		MemBW:           1.55e12,
		PCIeBW:          30e9,
		LaunchLatency:   20 * time.Microsecond,
		KernelOverhead:  60 * time.Microsecond,
		ModuleLoadFixed: 2200 * time.Microsecond,
		ModuleLoadBW:    105e6,
		SymbolResolve:   90 * time.Microsecond,
		ContextInit:     75 * time.Millisecond,
		CodeMemory:      512 << 20,
	}
}

// RX6900XT models the consumer AMD Radeon RX 6900 XT (gfx1030) under ROCm,
// whose driver pays the highest loading costs.
func RX6900XT() Profile {
	return Profile{
		Name:            "6900XT",
		Arch:            "gfx1030",
		PeakFlops:       23.0e12,
		MemBW:           512e9,
		PCIeBW:          24e9,
		LaunchLatency:   30 * time.Microsecond,
		KernelOverhead:  90 * time.Microsecond,
		ModuleLoadFixed: 5 * time.Millisecond,
		ModuleLoadBW:    38e6,
		SymbolResolve:   160 * time.Microsecond,
		ContextInit:     110 * time.Millisecond,
		CodeMemory:      256 << 20,
	}
}

// Profiles returns the three evaluated devices in the paper's order.
func Profiles() []Profile {
	return []Profile{MI100(), A100(), RX6900XT()}
}

// profilesByName indexes the built-in constructors by lower-cased name so
// lookups from flag parsing and HTTP handlers stay O(1) as profiles grow.
var profilesByName = map[string]func() Profile{
	"mi100":  MI100,
	"a100":   A100,
	"6900xt": RX6900XT,
}

// ProfileByName looks up one of the built-in profiles ("MI100", "A100",
// "6900XT"). The match is case-insensitive; ok is false for unknown names.
func ProfileByName(name string) (Profile, bool) {
	mk, ok := profilesByName[strings.ToLower(name)]
	if !ok {
		return Profile{}, false
	}
	return mk(), true
}
