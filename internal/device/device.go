// Package device models the GPU and host the simulated stack runs on: a
// roofline execution model (peak FLOPs vs memory bandwidth), in-order command
// streams driven by sim processes, busy-time accounting for utilization
// metrics, and calibrated per-device profiles (MI100, A100, RX 6900 XT)
// matching the paper's testbeds in magnitude.
//
// Paper anchor: the §IV testbed devices (MI100, A100, RX 6900 XT) as roofline stand-ins for real silicon.
package device

import (
	"fmt"
	"math"
	"time"

	"pask/internal/kernels"
	"pask/internal/sim"
)

// Profile holds the performance characteristics of one GPU plus its driver's
// code-object loading costs. Loading costs live here because they differ per
// platform (ROCm vs CUDA) and drive the per-device cold-start ratios of
// paper Fig 1(a).
type Profile struct {
	Name string // marketing name, e.g. "MI100"
	Arch string // ISA tag burned into code objects, e.g. "gfx908"

	PeakFlops float64 // peak FP32 throughput, FLOP/s
	MemBW     float64 // device memory bandwidth, bytes/s
	PCIeBW    float64 // host<->device copy bandwidth, bytes/s

	LaunchLatency  time.Duration // host-side cost to submit one kernel
	KernelOverhead time.Duration // device-side fixed startup per kernel

	ModuleLoadFixed time.Duration // per code object: open, mmap, set permissions
	ModuleLoadBW    float64       // bytes/s to read + relocate code
	SymbolResolve   time.Duration // per symbol lookup in a loaded module

	ContextInit time.Duration // GPU context creation at process start
	CodeMemory  int64         // device memory reserved for code objects, bytes
}

// KernelTime converts a workload into a duration with the roofline model at
// the given efficiency in (0, 1]: overhead + max(compute time, memory time).
// Memory throughput degrades as the square root of efficiency: streaming
// kernels saturate DRAM bandwidth with far fewer active compute units than
// arithmetic needs.
func (p Profile) KernelTime(w kernels.Workload, eff float64) time.Duration {
	if eff <= 0 || eff > 1 {
		panic(fmt.Sprintf("device: efficiency %v out of (0,1]", eff))
	}
	ct := float64(w.Flops) / (p.PeakFlops * eff)
	mt := float64(w.Bytes) / (p.MemBW * math.Sqrt(eff))
	t := ct
	if mt > t {
		t = mt
	}
	return p.KernelOverhead + time.Duration(t*float64(time.Second))
}

// LoadTime returns the time to load a code object of the given size and
// symbol count: the cost hipModuleLoad pays on a cache miss.
func (p Profile) LoadTime(sizeBytes int64, numSymbols int) time.Duration {
	return p.ModuleLoadFixed +
		time.Duration(float64(sizeBytes)/p.ModuleLoadBW*float64(time.Second)) +
		time.Duration(numSymbols)*p.SymbolResolve
}

// CopyTime returns the host<->device transfer time for n bytes.
func (p Profile) CopyTime(n int64) time.Duration {
	return time.Duration(float64(n) / p.PCIeBW * float64(time.Second))
}

// HostProfile holds the host-side framework costs: model parsing, library
// bookkeeping, and the applicability-check cost that PASK's categorical
// cache minimizes (paper §II-B).
type HostProfile struct {
	ParseInstr         time.Duration // deserialize one lowered instruction
	ModelOpen          time.Duration // open + map the compiled model file
	ApplicabilityCheck time.Duration // one Solution.IsApplicable evaluation
	CacheQueryFixed    time.Duration // fixed overhead per GetSubSolution query
	FindDBLookup       time.Duration // perf-db lookup for one problem
	SyncOverhead       time.Duration // one host<->device synchronization
	IterOverhead       time.Duration // per-inference framework bookkeeping
	ResidentMap        time.Duration // map one library-resident code object
}

// DefaultHost returns the host profile used across experiments (EPYC-class
// server per the paper's testbed).
func DefaultHost() HostProfile {
	return HostProfile{
		ParseInstr:         60 * time.Microsecond,
		ModelOpen:          2 * time.Millisecond,
		ApplicabilityCheck: 60 * time.Microsecond,
		CacheQueryFixed:    4 * time.Microsecond,
		FindDBLookup:       30 * time.Microsecond,
		SyncOverhead:       15 * time.Microsecond,
		IterOverhead:       3 * time.Millisecond,
		ResidentMap:        400 * time.Microsecond,
	}
}

// kernelWork is one entry in a stream's in-order queue.
type kernelWork struct {
	name string
	dur  time.Duration
	done *sim.Signal
	copy bool // DMA transfer: occupies the queue but is not "computing"
}

// Stream is an in-order GPU command queue. Exactly one host process may
// submit to a stream (the SPSC discipline of sim.Chan); the stream's own
// sim process executes submissions in FIFO order.
type Stream struct {
	id    int
	gpu   *GPU
	queue *sim.Chan[kernelWork]
}

// GPU is one simulated device: a profile, streams, and busy-interval union
// accounting used for the utilization results (paper Fig 6b).
type GPU struct {
	Profile Profile

	env     *sim.Env
	streams []*Stream

	active      int
	activeSince time.Duration
	busy        time.Duration

	// OnKernel, when set, observes every executed kernel (used by the
	// metrics tracer). start/end are virtual times.
	OnKernel func(name string, start, end time.Duration)

	kernelCount int
}

// NewGPU creates a device with one default stream.
func NewGPU(env *sim.Env, prof Profile) *GPU {
	g := &GPU{Profile: prof, env: env}
	g.NewStream()
	return g
}

// NewStream creates an additional in-order command queue.
func (g *GPU) NewStream() *Stream {
	s := &Stream{id: len(g.streams), gpu: g, queue: sim.NewChan[kernelWork](g.env, 1<<14)}
	g.streams = append(g.streams, s)
	g.env.Spawn(fmt.Sprintf("gpu-stream-%d", s.id), s.run)
	return s
}

// DefaultStream returns stream 0.
func (g *GPU) DefaultStream() *Stream { return g.streams[0] }

// BusyTime returns the accumulated union of intervals during which at least
// one kernel was executing.
func (g *GPU) BusyTime() time.Duration {
	if g.active > 0 {
		return g.busy + (g.env.Now() - g.activeSince)
	}
	return g.busy
}

// KernelCount returns the number of kernels executed so far.
func (g *GPU) KernelCount() int { return g.kernelCount }

func (g *GPU) kernelStart() {
	if g.active == 0 {
		g.activeSince = g.env.Now()
	}
	g.active++
}

func (g *GPU) kernelEnd() {
	g.active--
	if g.active == 0 {
		g.busy += g.env.Now() - g.activeSince
	}
}

// run executes the stream's queue until the channel closes.
func (s *Stream) run(p *sim.Proc) {
	for {
		w, ok := s.queue.Recv(p)
		if !ok {
			return
		}
		if w.dur > 0 {
			if w.copy {
				p.Sleep(w.dur) // DMA: occupies the in-order queue, not the CUs
			} else {
				start := p.Now()
				s.gpu.kernelStart()
				p.Sleep(w.dur)
				s.gpu.kernelEnd()
				s.gpu.kernelCount++
				if s.gpu.OnKernel != nil {
					s.gpu.OnKernel(w.name, start, p.Now())
				}
			}
		}
		if w.done != nil {
			w.done.Fire()
		}
	}
}

// Launch submits a kernel asynchronously, charging the host LaunchLatency to
// the calling process, and returns a completion signal.
func (s *Stream) Launch(p *sim.Proc, name string, dur time.Duration) *sim.Signal {
	p.Sleep(s.gpu.Profile.LaunchLatency)
	done := sim.NewSignal(p.Env())
	s.queue.Send(p, kernelWork{name: name, dur: dur, done: done})
	return done
}

// LaunchWorkload converts a workload to a duration with the device roofline
// and submits it.
func (s *Stream) LaunchWorkload(p *sim.Proc, name string, w kernels.Workload, eff float64) *sim.Signal {
	return s.Launch(p, name, s.gpu.Profile.KernelTime(w, eff))
}

// Copy models a host<->device memcpy of n bytes as stream work. Copies hold
// the queue for their duration but do not count as GPU compute time.
func (s *Stream) Copy(p *sim.Proc, name string, n int64) *sim.Signal {
	p.Sleep(s.gpu.Profile.LaunchLatency)
	done := sim.NewSignal(p.Env())
	s.queue.Send(p, kernelWork{name: name, dur: s.gpu.Profile.CopyTime(n), done: done, copy: true})
	return done
}

// Synchronize blocks the calling process until all previously submitted work
// on the stream has finished.
func (s *Stream) Synchronize(p *sim.Proc) {
	done := sim.NewSignal(p.Env())
	s.queue.Send(p, kernelWork{name: "sync-marker", done: done})
	done.Wait(p)
}

// Close shuts down the stream's process; used by tests that need clean
// environment termination.
func (s *Stream) Close() { s.queue.Close() }

// CloseAll closes every stream of the device.
func (g *GPU) CloseAll() {
	for _, s := range g.streams {
		s.Close()
	}
}
