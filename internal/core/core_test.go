package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pask/internal/blas"
	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/graphx"
	"pask/internal/hip"
	"pask/internal/kernels"
	"pask/internal/metrics"
	"pask/internal/miopen"
	"pask/internal/onnx/zoo"
	"pask/internal/sim"
	"pask/internal/tensor"
)

// zooByAbbr resolves a zoo spec inside tests.
func zooByAbbr(t *testing.T, abbr string) (zoo.Spec, error) {
	t.Helper()
	return zoo.ByAbbr(abbr)
}

// harness bundles one compiled model and a shared object store; each run
// gets a fresh simulated process (cold instance).
type harness struct {
	reg   *miopen.Registry
	store *codeobj.Store
	model *graphx.CompiledModel
}

func newHarness(t *testing.T, abbr string, batch int, opts graphx.CompileOptions) *harness {
	t.Helper()
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	spec, err := zoo.ByAbbr(abbr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(batch)
	if err != nil {
		t.Fatal(err)
	}
	m, err := graphx.Compile(g, miopen.NewPerfDB(reg), opts)
	if err != nil {
		t.Fatal(err)
	}
	store := codeobj.NewStore()
	if err := graphx.MaterializeModel(store, reg, m); err != nil {
		t.Fatal(err)
	}
	// BLAS objects need a runtime for arch resolution; borrow a throwaway.
	env := sim.NewEnv()
	rt := hip.NewRuntime(env, device.NewGPU(env, device.MI100()), device.DefaultHost(), store)
	if err := blas.NewLibrary(rt).Materialize(store, m.GemmProblems()); err != nil {
		t.Fatal(err)
	}
	return &harness{reg: reg, store: store, model: m}
}

// seededCat returns a categorical cache pre-seeded with the library's
// resident generics, as PASK configures at startup.
func seededCat(r *graphx.Runner) *CategoricalCache {
	c := NewCategoricalCache()
	SeedResidents(c, r.Lib)
	return c
}

// coldRun executes fn in a fresh process and returns its wall time.
func (h *harness) coldRun(t *testing.T, fn func(p *sim.Proc, r *graphx.Runner) error) (time.Duration, *graphx.Runner) {
	t.Helper()
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), h.store)
	runner := graphx.NewRunner(rt, miopen.NewLibrary(h.reg, rt), blas.NewLibrary(rt), &metrics.Tracer{})
	var total time.Duration
	var runErr error
	env.Spawn("main", func(p *sim.Proc) {
		defer gpu.CloseAll()
		if err := runner.Lib.LoadResidents(p); err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		runErr = fn(p, runner)
		total = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return total, runner
}

func testInstances(t *testing.T) (generic, midTier, specialist miopen.Instance, reg *miopen.Registry, prob miopen.Problem) {
	t.Helper()
	reg = miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	prob = miopen.NewConvProblem(tensor.Shape{N: 1, C: 64, H: 28, W: 28}, 64, 3, 3,
		kernels.Conv2DParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilH: 1, DilW: 1},
		1, tensor.F32, tensor.NCHW)
	gen, _ := reg.ByID("ConvWinogradNaiveFwd")
	mid, _ := reg.ByID("ConvBinWinogradRxSFwd")
	spec, _ := reg.ByID("ConvBinWinogradFwdFixed")
	return miopen.Bind(gen, &prob), miopen.Bind(mid, &prob), miopen.Bind(spec, &prob), reg, prob
}

// withProc runs fn inside a one-process environment with a library bound to
// an empty store.
func withProc(t *testing.T, reg *miopen.Registry, fn func(p *sim.Proc, lib *miopen.Library)) {
	t.Helper()
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), codeobj.NewStore())
	lib := miopen.NewLibrary(reg, rt)
	env.Spawn("main", func(p *sim.Proc) {
		defer gpu.CloseAll()
		fn(p, lib)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCategoricalCacheInsertAndPromote(t *testing.T) {
	gen, mid, spec, _, _ := testInstances(t)
	c := NewCategoricalCache()
	c.Insert(gen)
	c.Insert(mid)
	c.Insert(spec)
	if c.Len() != 3 || c.PatternLen(miopen.PatternWinograd) != 3 {
		t.Fatalf("len = %d patternLen = %d", c.Len(), c.PatternLen(miopen.PatternWinograd))
	}
	// Re-inserting does not duplicate.
	c.Insert(gen)
	if c.Len() != 3 {
		t.Fatalf("duplicate insert grew cache to %d", c.Len())
	}
	if c.Stats().Inserts != 3 {
		t.Fatalf("inserts = %d", c.Stats().Inserts)
	}
}

func TestCategoricalCacheHitUsesOneLookupForMRU(t *testing.T) {
	gen, mid, spec, reg, prob := testInstances(t)
	withProc(t, reg, func(p *sim.Proc, lib *miopen.Library) {
		c := NewCategoricalCache()
		c.Insert(gen)
		c.Insert(mid) // mid is now MRU and applicable
		sub, ok := c.GetSub(p, lib, spec, &prob)
		if !ok {
			t.Error("expected hit")
			return
		}
		if sub.Key() != mid.Key() {
			t.Errorf("got %s, want MRU mid-tier", sub.Key())
		}
		st := c.Stats()
		if st.Lookups != 1 || st.Hits != 1 || st.Queries != 1 {
			t.Errorf("stats = %+v, want one lookup for an MRU hit", st)
		}
	})
}

func TestCategoricalCacheMissSkipsOtherPatterns(t *testing.T) {
	_, mid, _, reg, prob := testInstances(t)
	direct, _ := reg.ByID("ConvDirectNaiveFwd")
	dInst := miopen.Bind(direct, &prob)
	withProc(t, reg, func(p *sim.Proc, lib *miopen.Library) {
		c := NewCategoricalCache()
		c.Insert(dInst) // only a DirectConv instance cached
		// Query for a Winograd solution: the categorical cache must not
		// check the DirectConv list and must miss with zero lookups.
		if _, ok := c.GetSub(p, lib, mid, &prob); ok {
			t.Error("unexpected hit across patterns")
		}
		if st := c.Stats(); st.Lookups != 0 {
			t.Errorf("lookups = %d, categorical miss must not scan foreign patterns", st.Lookups)
		}
	})
}

func TestNaiveCacheScansForeignPatterns(t *testing.T) {
	gen, _, spec, reg, prob := testInstances(t)
	direct, _ := reg.ByID("ConvDirectNaiveFwd")
	pool, _ := reg.ByID("PoolingNaiveFwd")
	poolProb := miopen.NewPoolProblem(tensor.Shape{N: 1, C: 8, H: 8, W: 8},
		kernels.Pool2DParams{WinH: 2, WinW: 2, StrideH: 2, StrideW: 2}, kernels.MaxPool, tensor.F32, tensor.NCHW)
	withProc(t, reg, func(p *sim.Proc, lib *miopen.Library) {
		c := NewNaiveCache()
		c.Insert(gen)                          // applicable, oldest
		c.Insert(miopen.Bind(direct, &prob))   // foreign pattern, still checked
		c.Insert(miopen.Bind(pool, &poolProb)) // inapplicable, MRU
		sub, ok := c.GetSub(p, lib, spec, &prob)
		if !ok {
			t.Error("expected hit")
			return
		}
		// Naive scan: pool (inapplicable) -> direct (applicable!).
		// The flat cache may return a cross-pattern substitute; what matters
		// for Fig 9b is the lookup count.
		if c.Stats().Lookups < 2 {
			t.Errorf("lookups = %d, naive scan should pay for foreign entries", c.Stats().Lookups)
		}
		_ = sub
	})
}

func TestGetSubChargesCheckTime(t *testing.T) {
	gen, _, spec, reg, prob := testInstances(t)
	withProc(t, reg, func(p *sim.Proc, lib *miopen.Library) {
		c := NewCategoricalCache()
		c.Insert(gen)
		before := p.Now()
		if _, ok := c.GetSub(p, lib, spec, &prob); !ok {
			t.Error("expected hit")
		}
		host := lib.RT.Host()
		want := host.CacheQueryFixed + host.ApplicabilityCheck
		if got := p.Now() - before; got != want {
			t.Errorf("query cost %v, want %v", got, want)
		}
	})
}

// Property: GetSub never returns an inapplicable instance, under random
// cache contents and queries.
func TestGetSubSoundnessProperty(t *testing.T) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	sols := reg.Solutions()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := sim.NewEnv()
		gpu := device.NewGPU(env, device.MI100())
		rt := hip.NewRuntime(env, gpu, device.DefaultHost(), codeobj.NewStore())
		lib := miopen.NewLibrary(reg, rt)
		ok := true
		env.Spawn("main", func(p *sim.Proc) {
			defer gpu.CloseAll()
			var caches []Cache = []Cache{NewCategoricalCache(), NewNaiveCache()}
			c := caches[rng.Intn(2)]
			// Populate with random bound instances.
			for i := 0; i < rng.Intn(8); i++ {
				prob := randomConvProblem(rng)
				s := sols[rng.Intn(len(sols))]
				if s.IsApplicable(reg.Ctx(), &prob) {
					c.Insert(miopen.Bind(s, &prob))
				}
			}
			for i := 0; i < 5; i++ {
				prob := randomConvProblem(rng)
				want, err := reg.FindBest(&prob)
				if err != nil {
					continue
				}
				sub, hit := c.GetSub(p, lib, want.Inst, &prob)
				if hit && !sub.IsApplicable(reg.Ctx(), &prob) {
					ok = false
				}
			}
		})
		if err := env.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomConvProblem(rng *rand.Rand) miopen.Problem {
	c := []int{3, 8, 16, 64, 128}[rng.Intn(5)]
	k := []int{8, 16, 64, 256}[rng.Intn(4)]
	r := []int{1, 3, 5}[rng.Intn(3)]
	hw := []int{7, 14, 28, 56, 224}[rng.Intn(5)]
	st := rng.Intn(2) + 1
	return miopen.NewConvProblem(tensor.Shape{N: 1, C: c, H: hw, W: hw}, k, r, r,
		kernels.Conv2DParams{StrideH: st, StrideW: st, PadH: r / 2, PadW: r / 2, DilH: 1, DilW: 1},
		1, tensor.F32, tensor.NCHW)
}

func TestInterleavedPaSKBeatsBaseline(t *testing.T) {
	h := newHarness(t, "vgg", 1, graphx.CompileOptions{})
	baseline, _ := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		return r.RunBaseline(p, h.model)
	})
	var res *Result
	pask, paskRunner := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		res, err = RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
		return err
	})
	if pask >= baseline {
		t.Fatalf("PaSK (%v) not faster than baseline (%v)", pask, baseline)
	}
	if res.SkippedLoads == 0 {
		t.Fatal("PaSK skipped no loads on VGG")
	}
	if res.Cache.Hits == 0 || res.Cache.Queries < res.Cache.Hits {
		t.Fatalf("cache stats inconsistent: %+v", res.Cache)
	}
	if res.Milestone < 1 {
		t.Fatalf("milestone = %d", res.Milestone)
	}
	if paskRunner.RT.Stats().ModuleLoads == 0 {
		t.Fatal("PaSK must still load something")
	}
	speedup := float64(baseline) / float64(pask)
	if speedup < 1.5 {
		t.Fatalf("PaSK speedup %.2fx too small (baseline=%v pask=%v)", speedup, baseline, pask)
	}
}

func TestPaSKIInterleavesButLoadsEverything(t *testing.T) {
	h := newHarness(t, "res", 1, graphx.CompileOptions{})
	baseline, baseRunner := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		return r.RunBaseline(p, h.model)
	})
	var res *Result
	paskI, iRunner := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		res, err = RunInterleaved(p, r, h.model, NewCategoricalCache(), false, Options{})
		return err
	})
	if res.SkippedLoads != 0 || res.Cache.Queries != 0 {
		t.Fatalf("PaSK-I must not reuse: %+v", res)
	}
	if iRunner.RT.Stats().ModuleLoads != baseRunner.RT.Stats().ModuleLoads {
		t.Fatalf("PaSK-I loads %d != baseline loads %d",
			iRunner.RT.Stats().ModuleLoads, baseRunner.RT.Stats().ModuleLoads)
	}
	if paskI >= baseline {
		t.Fatalf("PaSK-I (%v) not faster than baseline (%v): interleaving must overlap work", paskI, baseline)
	}
}

func TestFullPaSKFasterThanAblations(t *testing.T) {
	h := newHarness(t, "eff", 1, graphx.CompileOptions{})
	pask, _ := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		_, err := RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
		return err
	})
	paskI, _ := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		_, err := RunInterleaved(p, r, h.model, NewCategoricalCache(), false, Options{})
		return err
	})
	paskR, _ := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		nc := NewNaiveCache()
		SeedResidents(nc, r.Lib)
		_, err := RunSequentialReuse(p, r, h.model, nc)
		return err
	})
	if pask >= paskI {
		t.Fatalf("PaSK (%v) should beat PaSK-I (%v) via reuse", pask, paskI)
	}
	if pask >= paskR {
		t.Fatalf("PaSK (%v) should beat PaSK-R (%v) via interleaving", pask, paskR)
	}
}

func TestSequentialReuseStats(t *testing.T) {
	h := newHarness(t, "vgg", 1, graphx.CompileOptions{})
	var res *Result
	_, _ = h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		nc := NewNaiveCache()
		SeedResidents(nc, r.Lib)
		res, err = RunSequentialReuse(p, r, h.model, nc)
		return err
	})
	if res.Cache.Queries == 0 {
		t.Fatal("PaSK-R made no queries")
	}
	if res.SkippedLoads == 0 {
		t.Fatal("PaSK-R skipped no loads on VGG")
	}
}

func TestCategoricalBeatsNaiveOnLookupsPerHit(t *testing.T) {
	h := newHarness(t, "res", 1, graphx.CompileOptions{})
	var cat, naive *Result
	h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		cat, err = RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
		return err
	})
	h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		nc := NewNaiveCache()
		SeedResidents(nc, r.Lib)
		naive, err = RunInterleaved(p, r, h.model, nc, true, Options{})
		return err
	})
	if cat.Cache.Hits == 0 || naive.Cache.Hits == 0 {
		t.Fatalf("expected hits in both: cat=%+v naive=%+v", cat.Cache, naive.Cache)
	}
	catLPH := float64(cat.Cache.Lookups) / float64(cat.Cache.Hits)
	naiveLPH := float64(naive.Cache.Lookups) / float64(naive.Cache.Hits)
	if catLPH > naiveLPH {
		t.Fatalf("categorical lookups/hit %.2f > naive %.2f (paper Fig 9b inverts this)", catLPH, naiveLPH)
	}
}

func TestBackgroundLoadingWarmsSecondRequest(t *testing.T) {
	h := newHarness(t, "vgg", 1, graphx.CompileOptions{})
	// One warm process serving two requests with an idle gap between them.
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), h.store)
	runner := graphx.NewRunner(rt, miopen.NewLibrary(h.reg, rt), blas.NewLibrary(rt), &metrics.Tracer{})
	var first, second time.Duration
	var loadedBG int
	env.Spawn("main", func(p *sim.Proc) {
		defer gpu.CloseAll()
		if err := runner.Lib.LoadResidents(p); err != nil {
			t.Error(err)
			return
		}
		cache := NewCategoricalCache()
		SeedResidents(cache, runner.Lib)
		t0 := p.Now()
		res, err := RunInterleaved(p, runner, h.model, cache, true, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		first = p.Now() - t0
		// Idle interval: background-load the skipped solutions.
		loadedBG, err = BackgroundLoad(p, runner, cache, res.Skipped, 2*time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		t1 := p.Now()
		if _, err := RunInterleaved(p, runner, h.model, cache, true, Options{}); err != nil {
			t.Error(err)
			return
		}
		second = p.Now() - t1
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if loadedBG == 0 {
		t.Fatal("background loader had nothing to do")
	}
	if second >= first/2 {
		t.Fatalf("second request (%v) should be much faster than first (%v)", second, first)
	}
}

func TestBlasScopeHelpsTransformers(t *testing.T) {
	h := newHarness(t, "swin", 1, graphx.CompileOptions{})
	plain, _ := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		_, err := RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
		return err
	})
	var res *Result
	scoped, _ := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		res, err = RunInterleaved(p, r, h.model, seededCat(r), true, Options{BlasScope: true})
		return err
	})
	if scoped >= plain {
		t.Fatalf("BLAS scope (%v) should speed up ViT over default PaSK (%v)", scoped, plain)
	}
	if res.BlasSkipped == 0 {
		t.Fatal("BLAS scope skipped no GEMM loads")
	}
}

func TestInterleavedErrorPropagates(t *testing.T) {
	h := newHarness(t, "alex", 1, graphx.CompileOptions{})
	// Remove one required object so the loader fails mid-pipeline.
	removed := "ConvDirectTiledFwd_f32.pko" // conv1's selected solution
	if !h.store.Has(removed) {
		t.Fatal("expected specialist object missing from store")
	}
	if err := h.store.Truncate(removed, 4); err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), h.store)
	runner := graphx.NewRunner(rt, miopen.NewLibrary(h.reg, rt), blas.NewLibrary(rt), &metrics.Tracer{})
	var runErr error
	env.Spawn("main", func(p *sim.Proc) {
		defer gpu.CloseAll()
		// NoDegradation pins the historical fail-fast semantics; the default
		// path now absorbs load failures (TestDegradationSurvivesLoadFailure).
		_, runErr = RunInterleaved(p, runner, h.model, NewCategoricalCache(), true, Options{NoDegradation: true})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr == nil {
		t.Fatal("corrupted object must surface as an error")
	}
}

func TestMilestoneGrowsWithModelSize(t *testing.T) {
	// The milestone is where parsing finishes relative to loading: models
	// with more instructions parse longer, so more layers load eagerly
	// (paper §III-A: "more opportunities ... to load before-m solutions").
	milestone := func(abbr string) int {
		h := newHarness(t, abbr, 1, graphx.CompileOptions{})
		var res *Result
		h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
			var err error
			res, err = RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
			return err
		})
		return res.Milestone
	}
	small := milestone("alex")
	large := milestone("eff")
	if small < 1 {
		t.Fatalf("alex milestone = %d, want >= 1 (unconditional early loads)", small)
	}
	if large <= small {
		t.Fatalf("eff milestone (%d) should exceed alex milestone (%d)", large, small)
	}
}

func TestTransformElision(t *testing.T) {
	// ResNet's plan routes deep 1x1 convolutions through NHWC specialists
	// with interchange kernels around them; reuse of layout-agnostic
	// substitutes makes those transforms stale and elides their loads.
	h := newHarness(t, "res", 1, graphx.CompileOptions{})
	transforms := 0
	for i := range h.model.Instrs {
		if h.model.Instrs[i].Kind == graphx.KindTransform {
			transforms++
		}
	}
	if transforms == 0 {
		t.Skip("plan has no transforms to elide")
	}
	var res *Result
	_, runner := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		res, err = RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
		return err
	})
	if res.SkippedTransforms == 0 {
		t.Fatalf("no transforms elided despite %d planned", transforms)
	}
	// Elided transforms' objects were never loaded.
	loadedXforms := 0
	for _, path := range h.store.Paths() {
		if runner.RT.Loaded(path) && len(path) > 5 && path[:5] == "xform" {
			loadedXforms++
		}
	}
	if loadedXforms+res.SkippedTransforms < transforms {
		t.Fatalf("loaded (%d) + skipped (%d) < planned (%d)", loadedXforms, res.SkippedTransforms, transforms)
	}
}

func TestPrecisionPreferenceFallsBackToF32(t *testing.T) {
	// An int8 plan whose activation specialists are absent: with the
	// extension, queries that miss at int8 are served by resident fp32
	// kernels instead of loading the int8 specialists.
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	spec, err := zooByAbbr(t, "alex")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	g.DType = tensor.I8
	m, err := graphx.Compile(g, miopen.NewPerfDB(reg), graphx.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	store := codeobj.NewStore()
	if err := graphx.MaterializeModel(store, reg, m); err != nil {
		t.Fatal(err)
	}
	h := &harness{reg: reg, store: store, model: m}
	var plain, pref *Result
	plainT, _ := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		plain, err = RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
		return err
	})
	prefT, _ := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		pref, err = RunInterleaved(p, r, h.model, seededCat(r), true, Options{PrecisionPreference: true})
		return err
	})
	if pref.PrecisionFallbacks == 0 {
		t.Fatal("no precision fallbacks on an int8 plan")
	}
	if plain.PrecisionFallbacks != 0 {
		t.Fatal("fallbacks without the option enabled")
	}
	if prefT >= plainT {
		t.Fatalf("precision preference (%v) should beat plain PaSK (%v) on int8", prefT, plainT)
	}
}

func TestNoEagerPhaseSkipsMilestoneLoads(t *testing.T) {
	h := newHarness(t, "res", 1, graphx.CompileOptions{})
	var eager, selective *Result
	h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		eager, err = RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
		return err
	})
	h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		selective, err = RunInterleaved(p, r, h.model, seededCat(r), true, Options{NoEagerPhase: true})
		return err
	})
	if selective.Milestone != 0 {
		t.Fatalf("NoEagerPhase milestone = %d, want 0", selective.Milestone)
	}
	if eager.Milestone == 0 {
		t.Fatal("default run should have an eager phase")
	}
	if selective.SkippedLoads <= eager.SkippedLoads {
		t.Fatalf("selective-from-start should skip more loads: %d vs %d",
			selective.SkippedLoads, eager.SkippedLoads)
	}
}

func TestNoTransformElisionLoadsAllTransforms(t *testing.T) {
	h := newHarness(t, "res", 1, graphx.CompileOptions{})
	var with, without *Result
	withT, _ := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		with, err = RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
		return err
	})
	withoutT, _ := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		without, err = RunInterleaved(p, r, h.model, seededCat(r), true, Options{NoTransformElision: true})
		return err
	})
	if with.SkippedTransforms == 0 {
		t.Skip("no transforms elided on this plan")
	}
	if without.SkippedTransforms != 0 {
		t.Fatalf("elision disabled but %d transforms skipped", without.SkippedTransforms)
	}
	if withoutT < withT {
		t.Fatalf("disabling elision should not speed things up: %v vs %v", withoutT, withT)
	}
}

func TestRunWarmReuseSkipsParse(t *testing.T) {
	h := newHarness(t, "alex", 1, graphx.CompileOptions{})
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), h.store)
	runner := graphx.NewRunner(rt, miopen.NewLibrary(h.reg, rt), blas.NewLibrary(rt), &metrics.Tracer{})
	var coldT, warmSeq, warmNoParse time.Duration
	env.Spawn("main", func(p *sim.Proc) {
		defer gpu.CloseAll()
		if err := runner.Lib.LoadResidents(p); err != nil {
			t.Error(err)
			return
		}
		cache := NewCategoricalCache()
		SeedResidents(cache, runner.Lib)
		t0 := p.Now()
		if _, err := RunInterleaved(p, runner, h.model, cache, true, Options{}); err != nil {
			t.Error(err)
			return
		}
		coldT = p.Now() - t0
		t1 := p.Now()
		if _, err := RunSequentialReuse(p, runner, h.model, cache); err != nil {
			t.Error(err)
			return
		}
		warmSeq = p.Now() - t1
		t2 := p.Now()
		if _, err := RunWarmReuse(p, runner, h.model, cache); err != nil {
			t.Error(err)
			return
		}
		warmNoParse = p.Now() - t2
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !(warmNoParse < warmSeq && warmSeq < coldT) {
		t.Fatalf("expected warm-no-parse < warm-seq < cold: %v, %v, %v", warmNoParse, warmSeq, coldT)
	}
	// The difference is at least the parse time of the model.
	parse := device.DefaultHost().ModelOpen + time.Duration(h.model.NumInstructions())*device.DefaultHost().ParseInstr
	if warmSeq-warmNoParse < parse/2 {
		t.Fatalf("warm paths differ by %v, expected ~parse cost %v", warmSeq-warmNoParse, parse)
	}
}
