package core

import (
	"fmt"
	"time"

	"pask/internal/tensor"

	"pask/internal/blas"
	"pask/internal/graphx"
	"pask/internal/metrics"
	"pask/internal/miopen"
	"pask/internal/sim"
)

// Scheme names the evaluated configurations (paper §IV).
type Scheme string

const (
	SchemeBaseline Scheme = "Baseline" // reactive default workflow
	SchemeNNV12    Scheme = "NNV12"    // layout-uniform selection + pipelined loading
	SchemeIdeal    Scheme = "Ideal"    // all code objects resident
	SchemePaSK     Scheme = "PaSK"     // full design
	SchemePaSKI    Scheme = "PaSK-I"   // interleaving only
	SchemePaSKR    Scheme = "PaSK-R"   // reuse only, naive cache, no interleaving
)

// Schemes lists all evaluated schemes in presentation order.
func Schemes() []Scheme {
	return []Scheme{SchemeBaseline, SchemeNNV12, SchemeIdeal, SchemePaSK, SchemePaSKI, SchemePaSKR}
}

// Options tune the PASK executors.
type Options struct {
	// BlasScope extends PASK's loading/reuse management to the BLAS library
	// (paper §VI "Library supporting").
	BlasScope bool
	// PrecisionPreference lets PASK run a reduced-precision layer with an
	// already-loaded full-precision kernel instead of loading the absent
	// low-precision specialist (paper §VI "More factors for kernel
	// specialization").
	PrecisionPreference bool
	// NoTransformElision disables dynamic layout tracking: planned
	// interchange kernels always load and run (design ablation).
	NoTransformElision bool
	// NoEagerPhase applies the selective policy from the first layer
	// instead of loading unconditionally before the milestone (design
	// ablation of §III-A's milestone rule).
	NoEagerPhase bool
	// NoDegradation restores fail-fast semantics: a code-object load
	// failure aborts the run instead of engaging the recovery ladder
	// (forced reuse, generality fallback, transform elision).
	NoDegradation bool
	// Profile, when non-nil, receives the loader thread's realized
	// decisions — which code objects the run committed to and where the
	// executed solution differed from the statically selected one. The
	// warmup package's Recorder implements it to build load profiles for
	// cross-run prefetching.
	Profile ProfileObserver
	// Pressure, when non-nil, is polled at every primitive decision: at
	// PressureElevated a selective-phase categorical miss tries forced
	// cross-category reuse before loading; at PressureSevere the eager phase
	// too prefers resident substitutes over unconditional loads. The serving
	// layer's brownout controller raises it under queueing pressure.
	Pressure PressureSource
}

// pressure returns the options' current pressure level (nominal when no
// source is wired).
func (o Options) pressure() PressureLevel {
	if o.Pressure == nil {
		return PressureNominal
	}
	return o.Pressure.Pressure()
}

// ProfileObserver is the seam profile recording hangs off the interleaved
// executor's loading thread. Implementations must be cheap and must not
// touch simulated time: observations happen inline on the loader.
type ProfileObserver interface {
	// ObserveObject reports a code object the run committed to using, with
	// its kind ("solution", "transform", "builtin" or "blas").
	ObserveObject(kind, path string)
	// ObserveDecision reports one primitive layer's outcome: the statically
	// selected solution key, the key that actually ran, and whether they
	// differ (a reuse or degradation substitution).
	ObserveDecision(layer, pattern, selected, chosen string, substituted bool)
}

// Result carries PASK's run statistics.
type Result struct {
	Cache             CacheStats
	Milestone         int // primitive layers decided eagerly before the parser finished
	SkippedLoads      int // solution loads avoided through reuse
	SkippedTransforms int // layout transforms dropped with layout-agnostic substitutes
	CacheLen          int
	// PrecisionFallbacks counts layers served by a full-precision kernel
	// under the precision-preference extension.
	PrecisionFallbacks int
	// Skipped lists the statically selected instances whose loads were
	// avoided — the candidates for inter-request background loading (§VI).
	Skipped []miopen.Instance
	// BLAS-scope statistics (§VI extension).
	BlasQueries, BlasHits, BlasSkipped int

	// Degradation-ladder statistics (fault recovery).
	LoadFailures        int // chosen-solution load failures absorbed by the ladder
	ForcedReuse         int // layers served by an already-loaded substitute after a failure
	LadderFallbacks     int // layers served by loading a more generic alternative
	ElidedXformFailures int // interchange kernels dropped because their object failed to load
	// PressureReuse counts layers served by a resident substitute purely
	// because the pressure signal forced reuse — loads the brownout avoided
	// that nominal Algorithm 1 would have issued.
	PressureReuse int
	// Substitutions records every degraded layer decision for auditing.
	Substitutions []Substitution
}

// Degraded reports how many layers ran on a substitute because of a fault.
func (r *Result) Degraded() int { return r.ForcedReuse + r.LadderFallbacks }

// issueItem is the message the loading thread sends to the issuing thread.
type issueItem struct {
	instr    *graphx.Instruction
	inst     miopen.Instance // primitive: instance to run (selected or substitute)
	prob     *miopen.Problem // primitive problem, possibly rewritten (precision fallback)
	blasInst blas.Instance   // gemm under BlasScope
	hasBlas  bool
}

// pipeline carries the shared state of one interleaved run.
type pipeline struct {
	r         *graphx.Runner
	m         *graphx.CompiledModel
	cache     Cache
	selective bool
	opts      Options

	parseDone bool
	res       Result
	err       error

	// forceAgnostic is set when an interchange kernel's load failed and the
	// transform was elided: the next primitive must run layout-agnostic.
	forceAgnostic bool

	blasList []blas.Instance
}

func (pl *pipeline) fail(err error) {
	if pl.err == nil {
		pl.err = err
	}
}

// observeObject forwards one committed code object to the profile observer.
func (pl *pipeline) observeObject(kind, path string) {
	if pl.opts.Profile != nil {
		pl.opts.Profile.ObserveObject(kind, path)
	}
}

// observeDecision reports a primitive layer's realized decision. The
// statically selected key is recomputed from the registry — a host-side
// lookup that costs nothing in virtual time.
func (pl *pipeline) observeDecision(instr *graphx.Instruction, chosen miopen.Instance, usedSub bool) {
	if pl.opts.Profile == nil {
		return
	}
	selected := ""
	if sel, err := instr.Instance(pl.r.Lib.Reg); err == nil {
		selected = sel.Path()
	}
	pl.opts.Profile.ObserveDecision(instr.Name, string(chosen.CacheKey()), selected, chosen.Path(),
		usedSub && selected != chosen.Path())
}

// addGetsub records one cache-query span with its outcome attributes — the
// per-pattern visibility Fig 9's lookup analysis needs.
func (pl *pipeline) addGetsub(name, thread string, start, end time.Duration, attrs ...metrics.Attr) {
	pl.r.Tracer.AddSpan(metrics.Span{
		Cat: metrics.CatOverhead, Name: "getsub:" + name, Thread: thread,
		Start: start, End: end, Attrs: attrs,
	})
}

// RunInterleaved executes the model with PASK's three-thread pipeline. With
// selective=true this is full PaSK (Algorithm 1 after the milestone); with
// selective=false it is PaSK-I / NNV12-style unconditional pipelined loading.
// The call blocks (in virtual time) until the model completes.
func RunInterleaved(p *sim.Proc, r *graphx.Runner, m *graphx.CompiledModel, cache Cache, selective bool, opts Options) (*Result, error) {
	env := p.Env()
	pl := &pipeline{r: r, m: m, cache: cache, selective: selective, opts: opts}
	parsed := sim.NewChan[*graphx.Instruction](env, m.NumInstructions()+4)
	issue := sim.NewChan[issueItem](env, m.NumInstructions()+4)
	done := sim.NewSignal(env)

	env.Spawn("pask-parser", func(pp *sim.Proc) {
		pp.Sleep(r.RT.Host().IterOverhead)
		r.OpenModel(pp)
		for i := range m.Instrs {
			r.ParseOne(pp, &m.Instrs[i])
			parsed.Send(pp, &m.Instrs[i])
			r.Rec.Count("pask_parsed_queue", pp.Now(), float64(parsed.Len()))
		}
		pl.parseDone = true
		r.Rec.Instant("pask-parser", "milestone", pp.Now(),
			metrics.Attr{Key: "eager_layers", Value: fmt.Sprint(pl.res.Milestone)})
		parsed.Close()
	})

	env.Spawn("pask-loader", func(lp *sim.Proc) {
		defer issue.Close()
		// PASK tracks the running data layout: reusing layout-agnostic
		// substitutes leaves tensors in their incoming layout, so planned
		// interchange kernels become stale and their loads are elided.
		curLayout := tensor.NCHW
		var pending *graphx.Instruction // deferred next-primitive transform
		runTransform := func(sp *sim.Proc, tr *graphx.Instruction) {
			if pl.selective && !pl.opts.NoTransformElision &&
				(curLayout != tr.XformSrc || curLayout == tr.XformDst) {
				// Stale under dynamic layout tracking: nothing to convert.
				pl.res.SkippedTransforms++
				return
			}
			if _, err := pl.r.RT.ModuleLoad(sp, tr.XformPath); err != nil {
				if !pl.opts.NoDegradation {
					// Degrade: drop the interchange and force the consuming
					// primitive onto a layout-agnostic instance. Data stays
					// in curLayout, so downstream tracking remains sound.
					pl.res.ElidedXformFailures++
					pl.res.SkippedTransforms++
					pl.forceAgnostic = true
					return
				}
				pl.fail(err)
				return
			}
			curLayout = tr.XformDst
			pl.observeObject("transform", tr.XformPath)
			issue.Send(sp, issueItem{instr: tr})
		}
		flushPending := func(sp *sim.Proc) {
			if pending == nil {
				return
			}
			tr := pending
			pending = nil
			runTransform(sp, tr)
		}
		for {
			instr, ok := parsed.Recv(lp)
			if !ok {
				flushPending(lp)
				return
			}
			r.Rec.Count("pask_parsed_queue", lp.Now(), float64(parsed.Len()))
			r.Rec.Count("pask_cache_size", lp.Now(), float64(pl.cache.Len()))
			if pl.err != nil {
				continue // drain after failure
			}
			switch instr.Kind {
			case graphx.KindTransform:
				if instr.XformForNext {
					flushPending(lp)
					pending = instr
					continue
				}
				runTransform(lp, instr)

			case graphx.KindBuiltin:
				flushPending(lp)
				if _, err := pl.r.RT.ModuleLoad(lp, graphx.BuiltinObjectPath); err != nil {
					pl.fail(err)
					continue
				}
				pl.observeObject("builtin", graphx.BuiltinObjectPath)
				issue.Send(lp, issueItem{instr: instr})

			case graphx.KindGemm:
				flushPending(lp)
				item := issueItem{instr: instr}
				if pl.opts.BlasScope {
					inst, ok := pl.decideGemm(lp, instr)
					if ok {
						item.blasInst = inst
						item.hasBlas = true
						pl.observeObject("blas", inst.Path())
					}
				}
				issue.Send(lp, item)

			case graphx.KindPrimitive:
				inst, prob, usedSub, err := pl.decidePrimitive(lp, instr)
				if err != nil {
					pl.fail(err)
					continue
				}
				if pending != nil {
					if _, ag := inst.Sol.PreferredLayout(prob); usedSub && ag && !pl.opts.NoTransformElision {
						// The substitute runs in the incoming layout: the
						// planned transform (and its load) is unnecessary.
						pl.res.SkippedTransforms++
						pending = nil
					} else {
						flushPending(lp)
					}
				}
				if pl.forceAgnostic {
					// The transform feeding this primitive was elided after a
					// load failure: re-check the decision in the incoming
					// layout.
					pl.forceAgnostic = false
					sub, changed, aerr := agnosticSubstitute(lp, pl.r, pl.cache, &pl.res, instr.Name, inst, prob)
					if aerr != nil {
						pl.fail(aerr)
						continue
					}
					inst = sub
					usedSub = usedSub || changed
				}
				pref, agnostic := inst.Sol.PreferredLayout(prob)
				if !usedSub && !agnostic {
					curLayout = pref
				}
				pl.observeObject("solution", inst.Path())
				pl.observeDecision(instr, inst, usedSub)
				issue.Send(lp, issueItem{instr: instr, inst: inst, prob: prob})
			}
		}
	})

	env.Spawn("pask-issuer", func(ip *sim.Proc) {
		defer done.Fire()
		r.CopyParams(ip, m)
		for {
			item, ok := issue.Recv(ip)
			if !ok {
				break
			}
			r.Rec.Count("pask_issue_queue", ip.Now(), float64(issue.Len()))
			if pl.err != nil {
				continue
			}
			var err error
			switch {
			case item.instr.Kind == graphx.KindPrimitive:
				prob := item.prob
				if prob == nil {
					prob = &item.instr.Problem
				}
				_, err = r.ExecPrimitiveAs(ip, item.instr.Name, prob, item.inst)
			case item.hasBlas:
				start := ip.Now()
				_, err = r.Blas.RunInstance(ip, r.Stream, &item.instr.Gemm, item.blasInst)
				r.Tracer.Add(metrics.CatLaunch, "issue:"+item.instr.Name, ip.Name(), start, ip.Now())
			default:
				_, err = r.ExecInstr(ip, item.instr)
			}
			if err != nil {
				pl.fail(err)
			}
		}
		if pl.err == nil {
			r.Sync(ip)
		}
	})

	done.Wait(p)
	pl.res.Cache = cache.Stats()
	pl.res.CacheLen = cache.Len()
	return &pl.res, pl.err
}

// decidePrimitive implements Algorithm 1's per-layer decision on the loading
// thread: before the milestone load unconditionally; afterwards prefer the
// already-loaded s*, then a cached substitute, then load s*. It returns the
// instance to run and the (possibly precision-rewritten) problem.
func (pl *pipeline) decidePrimitive(lp *sim.Proc, instr *graphx.Instruction) (miopen.Instance, *miopen.Problem, bool, error) {
	lib := pl.r.Lib
	prob := &instr.Problem
	sInst, err := instr.Instance(lib.Reg)
	if err != nil {
		return miopen.Instance{}, prob, false, err
	}
	selectivePhase := pl.selective && (pl.parseDone || pl.opts.NoEagerPhase)
	if !selectivePhase {
		if pl.selective && pl.opts.pressure() >= PressureSevere {
			// Severe brownout overrides the milestone rule: even eager-phase
			// layers run on a resident substitute when one applies, so the
			// cold path issues no avoidable loads while the fleet is drowning.
			if sub, ok := pl.pressureSub(lp, true, instr.Name, sInst, prob); ok {
				pl.res.Milestone++
				return sub, prob, true, nil
			}
		}
		pl.res.Milestone++
		if err := lib.EnsureLoaded(lp, sInst); err != nil {
			if pl.opts.NoDegradation {
				return miopen.Instance{}, prob, false, err
			}
			if sub, ok := recoverLoadFailure(lp, pl.r, pl.cache, &pl.res, instr.Name, sInst, prob); ok {
				return sub, prob, true, nil
			}
			return miopen.Instance{}, prob, false, wrapNoUsable(instr.Name, err)
		}
		pl.cache.Insert(sInst)
		return sInst, prob, false, nil
	}
	if lib.IsLoaded(sInst) {
		pl.cache.Touch(sInst)
		return sInst, prob, false, nil
	}
	start := lp.Now()
	sub, ok := pl.cache.GetSub(lp, lib, sInst, prob)
	if !ok && pl.opts.PrecisionPreference && prob.DType != tensor.F32 {
		// §VI extension: retry the query at full precision — a resident
		// fp32 kernel beats loading the absent low-precision specialist.
		f32 := *prob
		f32.DType = tensor.F32
		if ranked := lib.Reg.Find(&f32); len(ranked) > 0 {
			if sub32, ok32 := pl.cache.GetSub(lp, lib, ranked[0].Inst, &f32); ok32 {
				pl.addGetsub(instr.Name, lp.Name(), start, lp.Now(),
					metrics.Attr{Key: "hit", Value: "true"},
					metrics.Attr{Key: "solution", Value: sub32.Key()},
					metrics.Attr{Key: "precision_fallback", Value: "true"})
				pl.res.SkippedLoads++
				pl.res.PrecisionFallbacks++
				pl.res.Skipped = append(pl.res.Skipped, sInst)
				probCopy := f32
				return sub32, &probCopy, true, nil
			}
		}
	}
	if ok {
		pl.addGetsub(instr.Name, lp.Name(), start, lp.Now(),
			metrics.Attr{Key: "hit", Value: "true"},
			metrics.Attr{Key: "solution", Value: sub.Key()})
		pl.res.SkippedLoads++
		pl.res.Skipped = append(pl.res.Skipped, sInst)
		return sub, prob, true, nil
	}
	pl.addGetsub(instr.Name, lp.Name(), start, lp.Now(),
		metrics.Attr{Key: "hit", Value: "false"})
	if pl.opts.pressure() >= PressureElevated {
		// Brownout: before paying a demand load, accept any applicable
		// already-loaded instance — the forced-reuse step of the fault
		// ladder, engaged by queueing pressure instead of a load failure.
		if sub, ok := pl.pressureSub(lp, false, instr.Name, sInst, prob); ok {
			return sub, prob, true, nil
		}
	}
	if err := lib.EnsureLoaded(lp, sInst); err != nil {
		if pl.opts.NoDegradation {
			return miopen.Instance{}, prob, false, err
		}
		if sub, ok := recoverLoadFailure(lp, pl.r, pl.cache, &pl.res, instr.Name, sInst, prob); ok {
			return sub, prob, true, nil
		}
		return miopen.Instance{}, prob, false, wrapNoUsable(instr.Name, err)
	}
	pl.cache.Insert(sInst)
	return sInst, prob, false, nil
}

// pressureSub looks for a resident substitute under brownout pressure:
// optionally the categorical lookup first (a same-pattern match is the
// better kernel), then forced cross-category reuse. Hits are counted apart
// from fault-driven reuse so experiments can attribute avoided loads to the
// pressure signal.
func (pl *pipeline) pressureSub(lp *sim.Proc, tryCategorical bool, layer string, want miopen.Instance, prob *miopen.Problem) (miopen.Instance, bool) {
	start := lp.Now()
	var sub miopen.Instance
	ok := false
	if tryCategorical {
		sub, ok = pl.cache.GetSub(lp, pl.r.Lib, want, prob)
	}
	if !ok {
		sub, ok = pl.cache.GetSubAny(lp, pl.r.Lib, want, prob)
	}
	pl.addGetsub(layer, lp.Name(), start, lp.Now(),
		metrics.Attr{Key: "hit", Value: fmt.Sprint(ok)},
		metrics.Attr{Key: "pressure", Value: pl.opts.pressure().String()})
	if !ok {
		return miopen.Instance{}, false
	}
	pl.res.SkippedLoads++
	pl.res.PressureReuse++
	pl.res.Skipped = append(pl.res.Skipped, want)
	pl.res.Substitutions = append(pl.res.Substitutions, Substitution{
		Layer: layer, Want: want, Got: sub, Prob: *prob, Forced: true,
	})
	return sub, true
}

// decideGemm applies the same policy to BLAS kernels under the §VI
// extension. Returns the instance to run and whether one was decided.
func (pl *pipeline) decideGemm(lp *sim.Proc, instr *graphx.Instruction) (blas.Instance, bool) {
	ranked := pl.r.Blas.Find(&instr.Gemm)
	if len(ranked) == 0 {
		return blas.Instance{}, false
	}
	chosen := ranked[0].Inst
	if err := pl.r.Blas.EnsureCore(lp); err != nil {
		pl.fail(err)
		return blas.Instance{}, false
	}
	if !pl.selective || !pl.parseDone {
		if _, err := pl.r.RT.ModuleLoad(lp, chosen.Path()); err != nil {
			pl.fail(err)
			return blas.Instance{}, false
		}
		pl.insertBlas(chosen)
		return chosen, true
	}
	if pl.r.RT.Loaded(chosen.Path()) {
		pl.insertBlas(chosen)
		return chosen, true
	}
	pl.res.BlasQueries++
	start := lp.Now()
	for i := range pl.blasList {
		lp.Sleep(pl.r.RT.Host().ApplicabilityCheck)
		if pl.blasList[i].Applicable(pl.r.RT.GPU().Profile, &instr.Gemm) {
			inst := pl.blasList[i]
			pl.blasList = append([]blas.Instance{inst}, append(pl.blasList[:i:i], pl.blasList[i+1:]...)...)
			pl.res.BlasHits++
			pl.res.BlasSkipped++
			pl.r.Tracer.Add(metrics.CatOverhead, "getsub-blas:"+instr.Name, lp.Name(), start, lp.Now())
			return inst, true
		}
	}
	pl.r.Tracer.Add(metrics.CatOverhead, "getsub-blas:"+instr.Name, lp.Name(), start, lp.Now())
	if _, err := pl.r.RT.ModuleLoad(lp, chosen.Path()); err != nil {
		pl.fail(err)
		return blas.Instance{}, false
	}
	pl.insertBlas(chosen)
	return chosen, true
}

func (pl *pipeline) insertBlas(inst blas.Instance) {
	for i := range pl.blasList {
		if pl.blasList[i].Path() == inst.Path() {
			pl.blasList = append([]blas.Instance{inst}, append(pl.blasList[:i:i], pl.blasList[i+1:]...)...)
			return
		}
	}
	pl.blasList = append([]blas.Instance{inst}, pl.blasList...)
}

// RunSequentialReuse executes the PaSK-R ablation: no interleaving (parse
// everything, then run layer by layer on one thread) with reuse through the
// given cache — typically the NaiveCache with its exhaustive scans.
func RunSequentialReuse(p *sim.Proc, r *graphx.Runner, m *graphx.CompiledModel, cache Cache) (*Result, error) {
	return runSequential(p, r, m, cache, true, Options{})
}

// RunSequentialReuseOpts is RunSequentialReuse with executor options — the
// serving layer threads its pressure signal through here.
func RunSequentialReuseOpts(p *sim.Proc, r *graphx.Runner, m *graphx.CompiledModel, cache Cache, opts Options) (*Result, error) {
	return runSequential(p, r, m, cache, true, opts)
}

// RunWarmReuse serves a request on a warm engine that retains the parsed
// program: layers still follow Algorithm 1 against the cache (paper §VI's
// subsequent-request behavior) but nothing is re-parsed.
func RunWarmReuse(p *sim.Proc, r *graphx.Runner, m *graphx.CompiledModel, cache Cache) (*Result, error) {
	return runSequential(p, r, m, cache, false, Options{})
}

// RunWarmReuseOpts is RunWarmReuse with executor options (pressure signal,
// profile observer) carried through to the per-layer decisions.
func RunWarmReuseOpts(p *sim.Proc, r *graphx.Runner, m *graphx.CompiledModel, cache Cache, opts Options) (*Result, error) {
	return runSequential(p, r, m, cache, false, opts)
}

func runSequential(p *sim.Proc, r *graphx.Runner, m *graphx.CompiledModel, cache Cache, parse bool, opts Options) (*Result, error) {
	res := &Result{}
	p.Sleep(r.RT.Host().IterOverhead)
	if parse {
		r.OpenModel(p)
		for i := range m.Instrs {
			r.ParseOne(p, &m.Instrs[i])
		}
	}
	r.CopyParams(p, m)
	var pending *graphx.Instruction
	forceAgnostic := false
	// runTransformSeq executes an interchange kernel, degrading on a load
	// failure the same way the interleaved loader does: drop the transform
	// and force the consuming primitive onto a layout-agnostic instance.
	runTransformSeq := func(tr *graphx.Instruction) error {
		if _, err := r.ExecInstr(p, tr); err != nil {
			res.ElidedXformFailures++
			res.SkippedTransforms++
			forceAgnostic = true
		}
		return nil
	}
	flushPending := func() error {
		if pending == nil {
			return nil
		}
		tr := pending
		pending = nil
		return runTransformSeq(tr)
	}
	for i := range m.Instrs {
		instr := &m.Instrs[i]
		switch instr.Kind {
		case graphx.KindTransform:
			if instr.XformForNext {
				if err := flushPending(); err != nil {
					return res, err
				}
				pending = instr
				continue
			}
			if err := runTransformSeq(instr); err != nil {
				return res, err
			}

		case graphx.KindPrimitive:
			sInst, err := instr.Instance(r.Lib.Reg)
			if err != nil {
				return res, err
			}
			run := sInst
			usedSub := false
			if r.Lib.IsLoaded(sInst) {
				cache.Touch(sInst)
			} else {
				start := p.Now()
				sub, ok := cache.GetSub(p, r.Lib, sInst, &instr.Problem)
				r.Tracer.Add(metrics.CatOverhead, "getsub:"+instr.Name, p.Name(), start, p.Now())
				if !ok && opts.pressure() >= PressureElevated {
					// Brownout on the warm/sequential path: forced
					// cross-category reuse before a demand load, mirroring
					// the interleaved loader's pressure branch.
					if psub, pok := cache.GetSubAny(p, r.Lib, sInst, &instr.Problem); pok {
						res.PressureReuse++
						res.Substitutions = append(res.Substitutions, Substitution{
							Layer: instr.Name, Want: sInst, Got: psub, Prob: instr.Problem, Forced: true,
						})
						sub, ok = psub, true
					}
				}
				if ok {
					res.SkippedLoads++
					res.Skipped = append(res.Skipped, sInst)
					run = sub
					usedSub = true
				} else {
					if lerr := r.Lib.EnsureLoaded(p, sInst); lerr != nil {
						fsub, fok := recoverLoadFailure(p, r, cache, res, instr.Name, sInst, &instr.Problem)
						if !fok {
							return res, wrapNoUsable(instr.Name, lerr)
						}
						run = fsub
						usedSub = true
					} else {
						cache.Insert(sInst)
					}
				}
			}
			if pending != nil {
				_, agnostic := run.Sol.PreferredLayout(&instr.Problem)
				if usedSub && agnostic {
					res.SkippedTransforms++
					pending = nil
				} else if err := flushPending(); err != nil {
					return res, err
				}
			}
			if forceAgnostic {
				forceAgnostic = false
				sub, changed, aerr := agnosticSubstitute(p, r, cache, res, instr.Name, run, &instr.Problem)
				if aerr != nil {
					return res, aerr
				}
				run = sub
				usedSub = usedSub || changed
			}
			if _, err := r.ExecPrimitive(p, instr, run); err != nil {
				return res, err
			}

		default:
			if err := flushPending(); err != nil {
				return res, err
			}
			if _, err := r.ExecInstr(p, instr); err != nil {
				return res, err
			}
		}
	}
	if err := flushPending(); err != nil {
		return res, err
	}
	r.Sync(p)
	res.Cache = cache.Stats()
	res.CacheLen = cache.Len()
	return res, nil
}

// BackgroundLoad realizes §VI "Loading desired solutions": during the idle
// interval between requests, load previously skipped (or still absent)
// selected solutions into the cache, stopping when the budget is exhausted.
// It returns how many objects were loaded.
func BackgroundLoad(p *sim.Proc, r *graphx.Runner, cache Cache, skipped []miopen.Instance, budget time.Duration) (int, error) {
	deadline := p.Now() + budget
	loaded := 0
	for _, inst := range skipped {
		if p.Now() >= deadline {
			break
		}
		if r.Lib.IsLoaded(inst) {
			continue
		}
		if err := r.Lib.EnsureLoaded(p, inst); err != nil {
			return loaded, fmt.Errorf("core: background load %s: %w", inst.Key(), err)
		}
		cache.Insert(inst)
		loaded++
	}
	return loaded, nil
}
