package core

import (
	"cmp"
	"errors"
	"fmt"
	"slices"

	"pask/internal/graphx"
	"pask/internal/metrics"
	"pask/internal/miopen"
	"pask/internal/sim"
)

// ErrNoUsableSolution is returned when a layer's chosen solution cannot be
// loaded and the degradation ladder finds no applicable substitute either —
// the request is genuinely unservable on this instance.
var ErrNoUsableSolution = errors.New("core: no usable solution")

// Substitution records one degraded layer: the instance the compiler chose
// and the one that actually ran. Forced substitutions come from the fault
// ladder (load failure), unforced ones from ordinary selective reuse.
type Substitution struct {
	Layer  string
	Want   miopen.Instance
	Got    miopen.Instance
	Prob   miopen.Problem
	Forced bool
}

func wrapNoUsable(layer string, cause error) error {
	return fmt.Errorf("%w for layer %s: %w", ErrNoUsableSolution, layer, cause)
}

// recoverLoadFailure implements the degradation ladder for a primitive whose
// chosen code object failed to load (Algorithm 1 extended with forced
// reuse): first any applicable already-loaded instance from the cache, then
// the generality ladder — alternative solutions for the problem, most
// generic first, whichever loads. Returns the replacement and whether one
// was found; the caller fails the layer otherwise.
func recoverLoadFailure(p *sim.Proc, r *graphx.Runner, cache Cache, res *Result, layer string, want miopen.Instance, prob *miopen.Problem) (miopen.Instance, bool) {
	res.LoadFailures++
	start := p.Now()
	defer func() {
		r.Tracer.Add(metrics.CatRecovery, "recover:"+layer, p.Name(), start, p.Now())
	}()
	if sub, ok := cache.GetSubAny(p, r.Lib, want, prob); ok {
		res.ForcedReuse++
		res.Substitutions = append(res.Substitutions, Substitution{
			Layer: layer, Want: want, Got: sub, Prob: *prob, Forced: true,
		})
		return sub, true
	}
	// Nothing resident fits: climb down the generality ladder and try to
	// load an alternative object for this problem, most generic first.
	ranked := r.Lib.Reg.Find(prob)
	slices.SortStableFunc(ranked, func(a, b miopen.Ranked) int {
		return cmp.Compare(a.Inst.Sol.Specificity(), b.Inst.Sol.Specificity())
	})
	for _, cand := range ranked {
		if cand.Inst.Key() == want.Key() {
			continue
		}
		if err := r.Lib.EnsureLoaded(p, cand.Inst); err != nil {
			continue
		}
		cache.Insert(cand.Inst)
		res.LadderFallbacks++
		res.Substitutions = append(res.Substitutions, Substitution{
			Layer: layer, Want: want, Got: cand.Inst, Prob: *prob, Forced: true,
		})
		return cand.Inst, true
	}
	return miopen.Instance{}, false
}

// agnosticSubstitute ensures a primitive can run on data left in its
// incoming layout after a planned interchange kernel failed to load and was
// elided. If the chosen instance is already layout-agnostic it stands;
// otherwise an agnostic replacement comes from the cache or the ladder.
func agnosticSubstitute(p *sim.Proc, r *graphx.Runner, cache Cache, res *Result, layer string, chosen miopen.Instance, prob *miopen.Problem) (miopen.Instance, bool, error) {
	if _, agnostic := chosen.Sol.PreferredLayout(prob); agnostic {
		return chosen, false, nil
	}
	start := p.Now()
	defer func() {
		r.Tracer.Add(metrics.CatRecovery, "agnostic:"+layer, p.Name(), start, p.Now())
	}()
	if sub, ok := cache.GetSubAny(p, r.Lib, chosen, prob); ok {
		if _, agnostic := sub.Sol.PreferredLayout(prob); agnostic {
			res.ForcedReuse++
			res.Substitutions = append(res.Substitutions, Substitution{
				Layer: layer, Want: chosen, Got: sub, Prob: *prob, Forced: true,
			})
			return sub, true, nil
		}
	}
	ranked := r.Lib.Reg.Find(prob)
	slices.SortStableFunc(ranked, func(a, b miopen.Ranked) int {
		return cmp.Compare(a.Inst.Sol.Specificity(), b.Inst.Sol.Specificity())
	})
	for _, cand := range ranked {
		if _, agnostic := cand.Inst.Sol.PreferredLayout(prob); !agnostic {
			continue
		}
		if err := r.Lib.EnsureLoaded(p, cand.Inst); err != nil {
			continue
		}
		cache.Insert(cand.Inst)
		res.LadderFallbacks++
		res.Substitutions = append(res.Substitutions, Substitution{
			Layer: layer, Want: chosen, Got: cand.Inst, Prob: *prob, Forced: true,
		})
		return cand.Inst, true, nil
	}
	return miopen.Instance{}, false, wrapNoUsable(layer, errors.New("no layout-agnostic substitute after elided transform"))
}
