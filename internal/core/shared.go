package core

import (
	"pask/internal/miopen"
	"pask/internal/sim"
)

// SharedCache is a per-GPU categorical solution cache shared by every tenant
// attached to the GPU's runtime. Entries are keyed purely by solution
// pattern and binding (miopen.Instance.CacheKey carries no model identity),
// so a solution loaded while serving one model is a first-class reuse
// candidate for every other model on the GPU — the cross-model sharing of
// paper §III-B/C lifted from process scope to device scope.
//
// Tenants never hold the SharedCache directly: each obtains a View, which
// implements the core.Cache interface, mutates the one shared MRU structure,
// and attributes the activity it causes to its own per-tenant counters.
type SharedCache struct {
	inner *CategoricalCache
}

// NewSharedCache returns an empty per-GPU shared cache.
func NewSharedCache() *SharedCache {
	return &SharedCache{inner: NewCategoricalCache()}
}

// Stats returns the aggregate counters across all views.
func (s *SharedCache) Stats() CacheStats { return s.inner.Stats() }

// Len returns the number of cached instances.
func (s *SharedCache) Len() int { return s.inner.Len() }

// View creates a tenant-scoped handle on the shared cache. All views share
// one categorical structure (recency promotions by one tenant benefit the
// next), while stats are recorded twice: into the shared aggregate and into
// the view's private counters.
func (s *SharedCache) View(tenant string) *SharedCacheView {
	return &SharedCacheView{shared: s, tenant: tenant}
}

// SharedCacheView is one tenant's handle on a SharedCache. It satisfies
// core.Cache so executors run unchanged against shared state.
//
// Unlike the private CategoricalCache, View.GetSub verifies candidate
// residency before charging an applicability check: the shared evictor may
// drop a module under another tenant's memory pressure, and a shared hit
// must never point at a vanished code object.
type SharedCacheView struct {
	shared *SharedCache
	tenant string
	stats  CacheStats
}

var _ Cache = (*SharedCacheView)(nil)

// Tenant returns the view's tenant name.
func (v *SharedCacheView) Tenant() string { return v.tenant }

// Insert records inst as resident in the shared cache.
func (v *SharedCacheView) Insert(inst miopen.Instance) {
	v.shared.inner.insertWith(&v.stats, inst)
}

// Touch refreshes recency in the shared cache.
func (v *SharedCacheView) Touch(inst miopen.Instance) { v.Insert(inst) }

// GetSub returns a loaded substitute from the shared cache, skipping
// entries whose modules were evicted since insertion.
func (v *SharedCacheView) GetSub(proc *sim.Proc, lib *miopen.Library, want miopen.Instance, p *miopen.Problem) (miopen.Instance, bool) {
	return v.shared.inner.getSubWith(&v.stats, true, proc, lib, want, p)
}

// GetSubAny is the degraded-mode query over every shared pattern list.
func (v *SharedCacheView) GetSubAny(proc *sim.Proc, lib *miopen.Library, want miopen.Instance, p *miopen.Problem) (miopen.Instance, bool) {
	return v.shared.inner.getSubAnyWith(&v.stats, proc, lib, want, p)
}

// Stats returns this view's share of the cache activity.
func (v *SharedCacheView) Stats() CacheStats { return v.stats }

// Len returns the size of the underlying shared cache (not a per-view
// count: residency is a GPU-level property).
func (v *SharedCacheView) Len() int { return v.shared.inner.Len() }
