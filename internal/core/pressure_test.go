package core

import (
	"testing"

	"pask/internal/graphx"
	"pask/internal/sim"
)

func TestPressureLevelStrings(t *testing.T) {
	cases := map[PressureLevel]string{
		PressureNominal:  "nominal",
		PressureElevated: "elevated",
		PressureSevere:   "severe",
	}
	for lvl, want := range cases {
		if lvl.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(lvl), lvl.String(), want)
		}
	}
	// A nil source means nominal — the executor must not need a guard at
	// every call site.
	if (Options{}).pressure() != PressureNominal {
		t.Fatal("nil pressure source must read as nominal")
	}
	if (Options{Pressure: StaticPressure(PressureSevere)}).pressure() != PressureSevere {
		t.Fatal("static pressure source not passed through")
	}
}

// TestSeverePressureReducesLoads runs full PASK cold twice — nominal and
// pinned-severe — and checks the pressure signal's contract: under severe
// pressure the executor substitutes already-resident solutions for loads it
// would otherwise issue (fewer module loads, forced substitutions recorded),
// and the run still completes every layer.
func TestSeverePressureReducesLoads(t *testing.T) {
	h := newHarness(t, "res", 1, graphx.CompileOptions{})

	var nominal, severe *Result
	_, nomRunner := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		nominal, err = RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
		return err
	})
	_, sevRunner := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		severe, err = RunInterleaved(p, r, h.model, seededCat(r), true,
			Options{Pressure: StaticPressure(PressureSevere)})
		return err
	})

	if nominal.PressureReuse != 0 {
		t.Fatalf("nominal run recorded %d pressure reuses", nominal.PressureReuse)
	}
	if severe.PressureReuse == 0 {
		t.Fatal("severe pressure produced no forced reuse")
	}
	nomLoads := nomRunner.RT.Stats().ModuleLoads
	sevLoads := sevRunner.RT.Stats().ModuleLoads
	if sevLoads >= nomLoads {
		t.Fatalf("severe loads %d not below nominal %d", sevLoads, nomLoads)
	}
	// (Completion is asserted by coldRun: an undecidable layer fails the run.)
	if severe.SkippedLoads <= nominal.SkippedLoads {
		t.Fatalf("severe skipped %d loads, nominal %d — pressure must skip strictly more",
			severe.SkippedLoads, nominal.SkippedLoads)
	}
	// Pressure substitutions ride the existing recovery bookkeeping, marked
	// forced — the same audit trail the degradation ladder leaves.
	forced := 0
	for _, sub := range severe.Substitutions {
		if sub.Forced {
			forced++
		}
	}
	if forced < severe.PressureReuse {
		t.Fatalf("forced substitutions %d < pressure reuses %d", forced, severe.PressureReuse)
	}
	// Pressure reuse must not inflate the failure-degradation counter: no
	// faults ran here.
	if severe.Degraded() != nominal.Degraded() {
		t.Fatalf("pressure reuse leaked into Degraded(): %d vs %d", severe.Degraded(), nominal.Degraded())
	}
}

// TestElevatedPressureSequentialReuse drives the PaSK-R sequential path:
// elevated pressure lets a categorical miss fall back to any resident
// solution instead of a demand load. A categorical cache makes the branch
// observable — its GetSub only matches within a category, so cross-category
// reuse can only come from the pressure fallback.
func TestElevatedPressureSequentialReuse(t *testing.T) {
	h := newHarness(t, "res", 1, graphx.CompileOptions{})

	var nominal, elevated *Result
	_, nomRunner := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		nominal, err = RunSequentialReuseOpts(p, r, h.model, NewCategoricalCache(), Options{})
		return err
	})
	_, elevRunner := h.coldRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var err error
		elevated, err = RunSequentialReuseOpts(p, r, h.model, NewCategoricalCache(),
			Options{Pressure: StaticPressure(PressureElevated)})
		return err
	})

	if elevated.PressureReuse == 0 {
		t.Fatal("elevated pressure produced no cross-category reuse")
	}
	if el, nl := elevRunner.RT.Stats().ModuleLoads, nomRunner.RT.Stats().ModuleLoads; el >= nl {
		t.Fatalf("elevated loads %d not below nominal %d", el, nl)
	}
	if elevated.SkippedLoads <= nominal.SkippedLoads {
		t.Fatalf("elevated skipped %d loads, nominal %d", elevated.SkippedLoads, nominal.SkippedLoads)
	}
}
