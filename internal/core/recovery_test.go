package core

import (
	"errors"
	"sort"
	"testing"

	"pask/internal/blas"
	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/graphx"
	"pask/internal/hip"
	"pask/internal/metrics"
	"pask/internal/miopen"
	"pask/internal/sim"
)

// faultRun is coldRun without the fatal-on-error behavior: it returns the
// run error so tests can assert on degraded and failed outcomes alike.
func (h *harness) faultRun(t *testing.T, fn func(p *sim.Proc, r *graphx.Runner) error) error {
	t.Helper()
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), h.store)
	runner := graphx.NewRunner(rt, miopen.NewLibrary(h.reg, rt), blas.NewLibrary(rt), &metrics.Tracer{})
	var runErr error
	env.Spawn("main", func(p *sim.Proc) {
		defer gpu.CloseAll()
		if err := runner.Lib.LoadResidents(p); err != nil {
			runErr = err
			return
		}
		runErr = fn(p, runner)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return runErr
}

// breakObject makes one stored object permanently unparseable.
func breakObject(t *testing.T, store *codeobj.Store, path string) {
	t.Helper()
	if !store.Has(path) {
		t.Fatalf("object %q missing from store", path)
	}
	if err := store.Truncate(path, 4); err != nil {
		t.Fatal(err)
	}
}

// breakNonResidentChosen truncates every statically chosen primitive object
// that is not part of the resident library binary, guaranteeing the run hits
// at least one load failure while LoadResidents still succeeds.
func breakNonResidentChosen(t *testing.T, h *harness) int {
	t.Helper()
	resident := make(map[string]bool)
	for _, inst := range h.reg.Residents() {
		resident[inst.Path()] = true
	}
	broken := make(map[string]bool)
	for i := range h.model.Instrs {
		in := &h.model.Instrs[i]
		if in.Kind != graphx.KindPrimitive {
			continue
		}
		inst, err := in.Instance(h.reg)
		if err != nil {
			t.Fatal(err)
		}
		path := inst.Path()
		if resident[path] || broken[path] || !h.store.Has(path) {
			continue
		}
		breakObject(t, h.store, path)
		broken[path] = true
	}
	if len(broken) == 0 {
		t.Fatal("model uses only resident objects; nothing to break")
	}
	return len(broken)
}

func TestDegradationSurvivesLoadFailure(t *testing.T) {
	h := newHarness(t, "alex", 1, graphx.CompileOptions{})
	breakNonResidentChosen(t, h)
	var res *Result
	err := h.faultRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var rerr error
		res, rerr = RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
		return rerr
	})
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if res.LoadFailures == 0 {
		t.Fatal("no load failure recorded despite broken object")
	}
	if res.Degraded() == 0 {
		t.Fatal("no layer recorded as degraded")
	}
	if len(res.Substitutions) == 0 {
		t.Fatal("no substitution recorded")
	}
	for _, s := range res.Substitutions {
		if !s.Forced {
			continue
		}
		if s.Got.Key() == s.Want.Key() {
			t.Fatalf("layer %s: substitute equals wanted instance", s.Layer)
		}
		if !s.Got.IsApplicable(h.reg.Ctx(), &s.Prob) {
			t.Fatalf("layer %s: substitute %s not applicable", s.Layer, s.Got.Key())
		}
	}
}

func TestDegradationSequentialSurvivesLoadFailure(t *testing.T) {
	h := newHarness(t, "alex", 1, graphx.CompileOptions{})
	breakNonResidentChosen(t, h)
	var res *Result
	err := h.faultRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var rerr error
		// An empty cache keeps ordinary GetSub reuse from absorbing the
		// broken objects, forcing the recovery ladder itself to serve them.
		res, rerr = RunSequentialReuse(p, r, h.model, NewNaiveCache())
		return rerr
	})
	if err != nil {
		t.Fatalf("degraded sequential run failed: %v", err)
	}
	if res.Degraded() == 0 {
		t.Fatal("no layer recorded as degraded")
	}
}

func TestNoDegradationFailsFast(t *testing.T) {
	h := newHarness(t, "alex", 1, graphx.CompileOptions{})
	breakObject(t, h.store, "ConvDirectTiledFwd_f32.pko")
	// No LoadResidents and an empty cache: the eager phase must hit the
	// broken object on the first conv layer and abort under NoDegradation.
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), h.store)
	runner := graphx.NewRunner(rt, miopen.NewLibrary(h.reg, rt), blas.NewLibrary(rt), &metrics.Tracer{})
	var runErr error
	env.Spawn("main", func(p *sim.Proc) {
		defer gpu.CloseAll()
		_, runErr = RunInterleaved(p, runner, h.model, NewCategoricalCache(), true, Options{NoDegradation: true})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr == nil {
		t.Fatal("NoDegradation run absorbed the load failure")
	}
	if !errors.Is(runErr, codeobj.ErrTruncated) {
		t.Fatalf("error %v does not wrap the parse failure", runErr)
	}
}

func TestNoUsableSolutionTyped(t *testing.T) {
	h := newHarness(t, "alex", 1, graphx.CompileOptions{})
	// Break every conv object so neither the chosen solution, the cache,
	// nor the ladder can serve conv layers. Resident generics stay usable
	// only if LoadResidents ran — skip seeding to drain the ladder fully.
	for _, path := range h.store.Paths() {
		if path == graphx.BuiltinObjectPath {
			continue
		}
		breakObject(t, h.store, path)
	}
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), h.store)
	runner := graphx.NewRunner(rt, miopen.NewLibrary(h.reg, rt), blas.NewLibrary(rt), &metrics.Tracer{})
	var runErr error
	env.Spawn("main", func(p *sim.Proc) {
		defer gpu.CloseAll()
		_, runErr = RunInterleaved(p, runner, h.model, NewCategoricalCache(), true, Options{})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr == nil {
		t.Fatal("run with every object broken must fail")
	}
	if !errors.Is(runErr, ErrNoUsableSolution) {
		t.Fatalf("error %v does not wrap ErrNoUsableSolution", runErr)
	}
}

func TestTransformElisionOnLoadFailure(t *testing.T) {
	// Probe a clean run first: only a transform object the pipeline really
	// loads can prove the elision path (stale transforms are skipped before
	// their load is attempted).
	h := newHarness(t, "res", 1, graphx.CompileOptions{})
	xformPaths := make(map[string]bool)
	for i := range h.model.Instrs {
		if h.model.Instrs[i].Kind == graphx.KindTransform {
			xformPaths[h.model.Instrs[i].XformPath] = true
		}
	}
	if len(xformPaths) == 0 {
		t.Skip("model compiled without transforms")
	}
	var loaded []string
	err := h.faultRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		_, rerr := RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
		for path := range xformPaths {
			if r.RT.Loaded(path) {
				loaded = append(loaded, path)
			}
		}
		return rerr
	})
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if len(loaded) == 0 {
		t.Skip("no transform object loaded on the clean run")
	}
	sort.Strings(loaded)
	breakObject(t, h.store, loaded[0])
	var res *Result
	err = h.faultRun(t, func(p *sim.Proc, r *graphx.Runner) error {
		var rerr error
		res, rerr = RunInterleaved(p, r, h.model, seededCat(r), true, Options{})
		return rerr
	})
	if err != nil {
		t.Fatalf("run with broken transform object failed: %v", err)
	}
	if res.ElidedXformFailures == 0 {
		t.Fatal("broken transform object was never elided")
	}
}

func TestGetSubAnyCrossPattern(t *testing.T) {
	generic, _, specialist, reg, prob := testInstances(t)
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	store := codeobj.NewStore()
	if err := miopen.MaterializeObjects(store, device.MI100().Arch, []miopen.Instance{generic}); err != nil {
		t.Fatal(err)
	}
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), store)
	lib := miopen.NewLibrary(reg, rt)
	env.Spawn("main", func(p *sim.Proc) {
		defer gpu.CloseAll()
		if err := lib.EnsureLoaded(p, generic); err != nil {
			t.Error(err)
			return
		}
		c := NewCategoricalCache()
		c.Insert(generic)
		// GetSub only scans the wanted pattern's list; GetSubAny must reach
		// the generic even when the wanted specialist has another pattern.
		if generic.Sol.Pattern() != specialist.Sol.Pattern() {
			if _, ok := c.GetSub(p, lib, specialist, &prob); ok {
				t.Error("GetSub unexpectedly crossed patterns")
			}
		}
		sub, ok := c.GetSubAny(p, lib, specialist, &prob)
		if !ok {
			t.Error("GetSubAny found no substitute")
			return
		}
		if sub.Key() != generic.Key() {
			t.Errorf("GetSubAny returned %s, want %s", sub.Key(), generic.Key())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGetSubAnySkipsUnloaded(t *testing.T) {
	generic, _, specialist, reg, prob := testInstances(t)
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	store := codeobj.NewStore()
	if err := miopen.MaterializeObjects(store, device.MI100().Arch, []miopen.Instance{generic}); err != nil {
		t.Fatal(err)
	}
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), store)
	lib := miopen.NewLibrary(reg, rt)
	env.Spawn("main", func(p *sim.Proc) {
		defer gpu.CloseAll()
		c := NewCategoricalCache()
		c.Insert(generic) // cached but never loaded
		if _, ok := c.GetSubAny(p, lib, specialist, &prob); ok {
			t.Error("GetSubAny returned an unloaded instance")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
