package core

import (
	"testing"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/hip"
	"pask/internal/miopen"
	"pask/internal/sim"
)

// withLoadedProc is withProc with the given instances materialized in the
// store and loaded into the runtime before fn runs, so shared-view queries
// (which verify residency) can hit them.
func withLoadedProc(t *testing.T, reg *miopen.Registry, loaded []miopen.Instance, fn func(p *sim.Proc, lib *miopen.Library)) {
	t.Helper()
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	store := codeobj.NewStore()
	if err := miopen.MaterializeObjects(store, device.MI100().Arch, loaded); err != nil {
		t.Fatal(err)
	}
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), store)
	lib := miopen.NewLibrary(reg, rt)
	env.Spawn("main", func(p *sim.Proc) {
		defer gpu.CloseAll()
		for _, inst := range loaded {
			if err := lib.EnsureLoaded(p, inst); err != nil {
				t.Error(err)
				return
			}
		}
		fn(p, lib)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedCacheCrossTenantHit(t *testing.T) {
	gen, mid, spec, reg, prob := testInstances(t)
	_ = gen
	withLoadedProc(t, reg, []miopen.Instance{mid}, func(p *sim.Proc, lib *miopen.Library) {
		sc := NewSharedCache()
		a := sc.View("alpha")
		b := sc.View("beta")
		a.Insert(mid) // tenant alpha loaded the mid-tier solution
		// Tenant beta, serving a different model, wants the specialist but
		// finds alpha's loaded instance through the shared cache.
		sub, ok := b.GetSub(p, lib, spec, &prob)
		if !ok {
			t.Fatal("expected cross-tenant hit")
		}
		if sub.Key() != mid.Key() {
			t.Fatalf("got %s, want alpha's %s", sub.Key(), mid.Key())
		}
		// Attribution: the insert is alpha's, the query/hit is beta's, the
		// aggregate sees both.
		if st := a.Stats(); st.Inserts != 1 || st.Queries != 0 || st.Hits != 0 {
			t.Fatalf("alpha stats = %+v", st)
		}
		if st := b.Stats(); st.Inserts != 0 || st.Queries != 1 || st.Hits != 1 || st.Lookups != 1 {
			t.Fatalf("beta stats = %+v", st)
		}
		if st := sc.Stats(); st.Inserts != 1 || st.Queries != 1 || st.Hits != 1 {
			t.Fatalf("aggregate stats = %+v", st)
		}
	})
}

func TestSharedCacheViewSkipsEvictedEntries(t *testing.T) {
	_, mid, spec, reg, prob := testInstances(t)
	withLoadedProc(t, reg, []miopen.Instance{mid}, func(p *sim.Proc, lib *miopen.Library) {
		sc := NewSharedCache()
		v := sc.View("alpha")
		v.Insert(mid)
		// Another tenant's memory pressure evicts the module after
		// insertion: the shared view must skip the stale entry without
		// charging an applicability check.
		lib.RT.Unload(mid.Path())
		if _, ok := v.GetSub(p, lib, spec, &prob); ok {
			t.Fatal("shared view returned a substitute whose module is gone")
		}
		if st := v.Stats(); st.Lookups != 0 {
			t.Fatalf("stale candidate charged %d applicability checks, want 0", st.Lookups)
		}
		// The entry is not deleted — a reload makes it visible again.
		if err := lib.EnsureLoaded(p, mid); err != nil {
			t.Fatal(err)
		}
		if _, ok := v.GetSub(p, lib, spec, &prob); !ok {
			t.Fatal("reloaded entry should hit again")
		}
	})
}

func TestSharedCacheRecencySharedAcrossViews(t *testing.T) {
	gen, mid, spec, reg, prob := testInstances(t)
	withLoadedProc(t, reg, []miopen.Instance{gen, mid}, func(p *sim.Proc, lib *miopen.Library) {
		sc := NewSharedCache()
		a := sc.View("alpha")
		b := sc.View("beta")
		a.Insert(gen)
		a.Insert(mid) // shared MRU order: [mid, gen]
		// While mid's module is out, beta's query skips it and hits gen,
		// promoting gen to MRU in the one shared structure.
		lib.RT.Unload(mid.Path())
		if sub, ok := b.GetSub(p, lib, spec, &prob); !ok || sub.Key() != gen.Key() {
			t.Fatalf("beta GetSub = %v %v", sub.Key(), ok)
		}
		if err := lib.EnsureLoaded(p, mid); err != nil {
			t.Fatal(err)
		}
		// Alpha now sees beta's promotion: gen answers first even though
		// alpha last touched mid — recency is a shared, cross-tenant
		// property, not per view.
		if sub, ok := a.GetSub(p, lib, spec, &prob); !ok || sub.Key() != gen.Key() {
			t.Fatalf("alpha GetSub = %v %v, want beta-promoted generic", sub.Key(), ok)
		}
	})
}
