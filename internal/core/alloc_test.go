package core

import (
	"testing"

	"pask/internal/sim"
)

// TestSharedViewQueryAllocs pins the allocation budget of the shared-cache
// query path: after warmup a steady-state categorical hit through a tenant
// view must not allocate (the interned keys, snapshot freelist and
// hand-rolled event heap each reached zero; any regression shows up here
// without needing the bench gate).
func TestSharedViewQueryAllocs(t *testing.T) {
	h := newBenchCache(t, benchEntries)
	view := NewSharedCache().View("alloc-test")
	h.run(t, func(p *sim.Proc) error {
		if err := h.loadAll(p); err != nil {
			return err
		}
		for _, inst := range h.insts {
			view.Insert(inst)
		}
		want, prob := h.insts[0], h.probs[0]
		// Warm the query path (memoized applicability, promoted MRU head,
		// grown event heap) before measuring.
		for i := 0; i < 16; i++ {
			if _, ok := view.GetSub(p, h.lib, want, &prob); !ok {
				t.Error("expected warm hit")
				return nil
			}
		}
		avg := testing.AllocsPerRun(100, func() {
			if _, ok := view.GetSub(p, h.lib, want, &prob); !ok {
				t.Error("expected hit")
			}
		})
		if avg >= 1 {
			t.Errorf("shared-view query allocates %.2f objects/op, want < 1", avg)
		}
		return nil
	})
}

// TestCategoricalInsertAllocs pins that re-inserting an already-cached
// instance (the refresh every successful load pays) allocates nothing.
func TestCategoricalInsertAllocs(t *testing.T) {
	h := newBenchCache(t, benchEntries)
	cache := NewCategoricalCache()
	h.run(t, func(p *sim.Proc) error {
		if err := h.loadAll(p); err != nil {
			return err
		}
		for _, inst := range h.insts {
			cache.Insert(inst)
		}
		i := 0
		avg := testing.AllocsPerRun(100, func() {
			cache.Insert(h.insts[i%benchEntries])
			i++
		})
		if avg >= 1 {
			t.Errorf("cache refresh allocates %.2f objects/op, want < 1", avg)
		}
		return nil
	})
}
