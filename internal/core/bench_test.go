package core

import (
	"fmt"
	"testing"

	"pask/internal/codeobj"
	"pask/internal/device"
	"pask/internal/hip"
	"pask/internal/kernels"
	"pask/internal/miopen"
	"pask/internal/sim"
	"pask/internal/tensor"
)

// benchConvProblem returns a problem the ConvBinWinogradFwdFixed specialist
// binds at channel count c — distinct c values yield distinct bindings, so
// one pattern list can hold many loaded instances, the shape the categorical
// cache scans under fleet traffic.
func benchConvProblem(c int) miopen.Problem {
	return miopen.NewConvProblem(tensor.Shape{N: 1, C: c, H: 14, W: 14}, c, 3, 3,
		kernels.Conv2DParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilH: 1, DilW: 1},
		1, tensor.F32, tensor.NCHW)
}

// benchCache bundles the cache-benchmark harness: n Winograd specialist
// instances (distinct bindings, so one pattern list holds them all) backed
// by a hip runtime, plus one "miss" instance whose binding is cached
// nowhere.
type benchCache struct {
	env      *sim.Env
	gpu      *device.GPU
	lib      *miopen.Library
	insts    []miopen.Instance
	probs    []miopen.Problem
	missInst miopen.Instance
	missProb miopen.Problem
}

func newBenchCache(b testing.TB, n int) *benchCache {
	b.Helper()
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	sol, ok := reg.ByID("ConvBinWinogradFwdFixed")
	if !ok {
		b.Fatal("ConvBinWinogradFwdFixed not registered")
	}
	insts := make([]miopen.Instance, 0, n)
	probs := make([]miopen.Problem, 0, n)
	for i := 0; i < n; i++ {
		p := benchConvProblem(16 + 8*i)
		probs = append(probs, p)
		insts = append(insts, miopen.Bind(sol, &p))
	}
	missProb := benchConvProblem(16 + 8*n)
	missInst := miopen.Bind(sol, &missProb)

	store := codeobj.NewStore()
	if err := miopen.MaterializeObjects(store, device.MI100().Arch, insts); err != nil {
		b.Fatal(err)
	}
	env := sim.NewEnv()
	gpu := device.NewGPU(env, device.MI100())
	rt := hip.NewRuntime(env, gpu, device.DefaultHost(), store)
	lib := miopen.NewLibrary(reg, rt)
	return &benchCache{env: env, gpu: gpu, lib: lib, insts: insts, probs: probs, missInst: missInst, missProb: missProb}
}

// loadAll makes every instance's module resident so shared-view residency
// guards pass.
func (h *benchCache) loadAll(p *sim.Proc) error {
	for _, inst := range h.insts {
		if err := h.lib.EnsureLoaded(p, inst); err != nil {
			return err
		}
	}
	return nil
}

// run spawns the benchmark proc, runs the simulation and reports errors on
// the benchmark goroutine. Streams are closed on exit so the env drains.
func (h *benchCache) run(b testing.TB, fn func(p *sim.Proc) error) {
	b.Helper()
	var benchErr error
	h.env.Spawn("bench", func(p *sim.Proc) {
		defer h.gpu.CloseAll()
		benchErr = fn(p)
	})
	if err := h.env.Run(); err != nil {
		b.Fatal(err)
	}
	if benchErr != nil {
		b.Fatal(benchErr)
	}
}

const benchEntries = 16

// BenchmarkCategoricalQueryMiss measures the per-miss scan of one pattern
// list: every candidate charges an applicability check and fails on its
// binding, the hot path fleet traffic contends on (paper §III-C).
func BenchmarkCategoricalQueryMiss(b *testing.B) {
	h := newBenchCache(b, benchEntries)
	cache := NewCategoricalCache()
	h.run(b, func(p *sim.Proc) error {
		if err := h.loadAll(p); err != nil {
			return err
		}
		for _, inst := range h.insts {
			cache.Insert(inst)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := cache.GetSub(p, h.lib, h.missInst, &h.missProb); ok {
				return fmt.Errorf("unexpected hit")
			}
		}
		return nil
	})
}

// BenchmarkCategoricalQueryHit measures the steady-state hit: the winner
// sits at the MRU head after its first promotion, so each query scans one
// candidate.
func BenchmarkCategoricalQueryHit(b *testing.B) {
	h := newBenchCache(b, benchEntries)
	cache := NewCategoricalCache()
	h.run(b, func(p *sim.Proc) error {
		if err := h.loadAll(p); err != nil {
			return err
		}
		for _, inst := range h.insts {
			cache.Insert(inst)
		}
		want, prob := h.insts[0], h.probs[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := cache.GetSub(p, h.lib, want, &prob); !ok {
				return fmt.Errorf("expected hit")
			}
		}
		return nil
	})
}

// BenchmarkSharedViewQueryMiss is the per-miss scan through a tenant view of
// the per-GPU SharedCache: on top of the categorical scan every candidate
// passes a residency probe before its check is charged.
func BenchmarkSharedViewQueryMiss(b *testing.B) {
	h := newBenchCache(b, benchEntries)
	view := NewSharedCache().View("bench")
	h.run(b, func(p *sim.Proc) error {
		if err := h.loadAll(p); err != nil {
			return err
		}
		for _, inst := range h.insts {
			view.Insert(inst)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := view.GetSub(p, h.lib, h.missInst, &h.missProb); ok {
				return fmt.Errorf("unexpected hit")
			}
		}
		return nil
	})
}

// BenchmarkCacheInsertRefresh measures re-inserting the current LRU tail:
// the full refresh scan plus the head promotion, the bookkeeping every
// successful load pays.
func BenchmarkCacheInsertRefresh(b *testing.B) {
	h := newBenchCache(b, benchEntries)
	cache := NewCategoricalCache()
	h.run(b, func(p *sim.Proc) error {
		if err := h.loadAll(p); err != nil {
			return err
		}
		for _, inst := range h.insts {
			cache.Insert(inst)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Round-robin re-insert targets the tail each time (the previous
			// insert rotated it there), the worst-case refresh scan.
			cache.Insert(h.insts[i%benchEntries])
		}
		return nil
	})
}

// BenchmarkGetSubAnyMiss measures the degraded-mode query that scans every
// pattern list with per-candidate residency probes — the forced-reuse path
// brownout mode leans on.
func BenchmarkGetSubAnyMiss(b *testing.B) {
	h := newBenchCache(b, benchEntries)
	cache := NewCategoricalCache()
	h.run(b, func(p *sim.Proc) error {
		if err := h.loadAll(p); err != nil {
			return err
		}
		for _, inst := range h.insts {
			cache.Insert(inst)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := cache.GetSubAny(p, h.lib, h.missInst, &h.missProb); ok {
				return fmt.Errorf("unexpected hit")
			}
		}
		return nil
	})
}
