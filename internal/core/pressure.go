package core

// PressureLevel is the overload-pressure signal the serving layer feeds into
// Algorithm 1's per-layer decision. PASK's selective reuse (paper §III-B)
// already trades per-layer optimality against load cost; under overload that
// trade shifts further toward reuse — every avoided demand load shortens the
// queue for everyone. Levels only ever raise reuse aggressiveness; they never
// change which requests complete, only which code objects serve them.
type PressureLevel int

const (
	// PressureNominal leaves Algorithm 1 untouched.
	PressureNominal PressureLevel = iota
	// PressureElevated forces cross-category reuse: a selective-phase layer
	// whose categorical lookup misses runs on any applicable already-loaded
	// instance (the GetSubAny / forced-reuse path from the fault ladder)
	// before falling back to a demand load.
	PressureElevated
	// PressureSevere additionally overrides the eager phase: even before the
	// parse milestone, layers prefer resident substitutes over unconditional
	// loads — the full brownout, trading first-request optimality for not
	// touching storage at all when something loaded can run.
	PressureSevere
)

// String names the level for trace attributes and metrics labels.
func (l PressureLevel) String() string {
	switch {
	case l <= PressureNominal:
		return "nominal"
	case l == PressureElevated:
		return "elevated"
	default:
		return "severe"
	}
}

// PressureSource supplies the current pressure level. Implementations must
// be cheap and must not consume virtual time: the executor polls it inline
// on the loading thread at every primitive decision. The serving layer's
// brownout controller implements it; StaticPressure pins a level for
// experiments and the public API.
type PressureSource interface {
	Pressure() PressureLevel
}

// StaticPressure is a PressureSource stuck at a fixed level.
type StaticPressure PressureLevel

// Pressure implements PressureSource.
func (s StaticPressure) Pressure() PressureLevel { return PressureLevel(s) }
