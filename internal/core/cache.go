// Package core implements PASK, the paper's contribution: a kernel loading
// and reusing middleware between the inference engine and the primitive
// library. It provides
//
//   - the categorical solution cache (§III-C): loaded solution instances
//     organized in per-pattern MRU lists so a reusable substitute is found
//     with ~1 applicability check;
//   - selective solution reuse (§III-B, Algorithm 1): run an absent layer
//     with an already-loaded, possibly more generic solution instead of
//     loading the statically optimal one;
//   - proactively interleaved execution (§III-A): parsing, loading and
//     issuing on three host threads joined by SPSC channels;
//   - the evaluated scheme variants (Baseline, NNV12, Ideal, PaSK, PaSK-I,
//     PaSK-R) and the §VI extensions (BLAS scope, precision preference,
//     inter-request background loading).
//
// Paper anchor: §III-A interleaved pipeline, §III-B Algorithm 1, §III-C categorical cache — the paper's contribution itself.
package core

import (
	"time"

	"pask/internal/miopen"
	"pask/internal/sim"
)

// CacheStats counts cache activity for the paper's Fig 9 metrics.
type CacheStats struct {
	Queries int // GetSub invocations
	Hits    int // queries answered with a substitute
	Lookups int // IsApplicable evaluations performed inside queries
	Inserts int // instances inserted (loads)
}

// Cache is the loaded-solution cache PASK consults for substitutes
// (Algorithm 1's GETSUBSOLUTION). Two implementations exist: the categorical
// per-pattern cache of full PASK and the flat naive cache of PaSK-R.
type Cache interface {
	// Insert records that inst's code object is resident, moving it to the
	// most-recently-used position.
	Insert(inst miopen.Instance)
	// Touch refreshes recency after an instance is used directly.
	Touch(inst miopen.Instance)
	// GetSub returns a loaded substitute applicable to p for the wanted
	// instance, charging one applicability check per candidate examined.
	GetSub(proc *sim.Proc, lib *miopen.Library, want miopen.Instance, p *miopen.Problem) (miopen.Instance, bool)
	// GetSubAny is the degraded-mode query used when the wanted instance's
	// code object cannot load: unlike GetSub it scans every category, skips
	// the wanted instance itself, and only returns candidates whose modules
	// are verifiably resident (forced reuse must not trigger another load).
	GetSubAny(proc *sim.Proc, lib *miopen.Library, want miopen.Instance, p *miopen.Problem) (miopen.Instance, bool)
	// Stats returns the accumulated counters.
	Stats() CacheStats
	// Len returns the number of cached instances.
	Len() int
}

// SeedResidents inserts the library's resident generic instances into a
// cache, provided they are actually loaded in the process's runtime. PASK
// does this once at startup: the generics shipped inside the library binary
// are the first reuse candidates of every pattern.
func SeedResidents(c Cache, lib *miopen.Library) {
	for _, inst := range lib.Reg.Residents() {
		if lib.IsLoaded(inst) {
			c.Insert(inst)
		}
	}
}

// allPatterns pins the stable pattern order once; miopen.Patterns clones a
// fresh slice per call, which the query hot path must not pay.
var allPatterns = miopen.Patterns()

// entry pairs a cached instance with its precomputed identity key, so MRU
// scans compare strings the cache already holds instead of rebuilding the
// key per candidate.
type entry struct {
	inst miopen.Instance
	key  string
}

// CategoricalCache organizes loaded instances in separate MRU lists keyed by
// solution pattern (paper §III-C). A query only scans the list matching the
// wanted solution's pattern and gives up without touching other categories.
type CategoricalCache struct {
	lists   map[miopen.Pattern][]entry // index 0 = most recent
	scratch [][]entry                  // freelist of query snapshot buffers
	stats   CacheStats
}

// NewCategoricalCache returns an empty categorical cache.
func NewCategoricalCache() *CategoricalCache {
	return &CategoricalCache{lists: make(map[miopen.Pattern][]entry)}
}

func promote[T any](list []T, i int) []T {
	if i == 0 {
		return list
	}
	e := list[i]
	copy(list[1:i+1], list[:i])
	list[0] = e
	return list
}

// promoteKey moves the entry with the given key to the head of its pattern
// list, consulting the *current* list. Queries iterate over a snapshot
// because applicability checks sleep in virtual time — on a shared cache
// another tenant may reorder the live list during the sleep, so promotion
// must re-locate the winner by key rather than trust a snapshot index.
func (c *CategoricalCache) promoteKey(pat miopen.Pattern, key string) {
	list := c.lists[pat]
	for i := range list {
		if list[i].key == key {
			c.lists[pat] = promote(list, i)
			return
		}
	}
}

// snapshot copies a pattern list into a reusable scratch buffer. The pop and
// copy happen without yields, so concurrent queries interleaved in virtual
// time each hold distinct buffers; release returns the buffer once the query
// is done iterating.
func (c *CategoricalCache) snapshot(list []entry) []entry {
	var buf []entry
	if n := len(c.scratch); n > 0 {
		buf = c.scratch[n-1][:0]
		c.scratch = c.scratch[:n-1]
	}
	return append(buf, list...)
}

func (c *CategoricalCache) release(buf []entry) {
	c.scratch = append(c.scratch, buf)
}

// Insert adds or refreshes an instance at the head of its pattern list.
func (c *CategoricalCache) Insert(inst miopen.Instance) { c.insertWith(nil, inst) }

// insertWith is Insert with an optional second stats sink — the seam
// SharedCacheView uses to attribute activity on the shared cache to one
// tenant. Counter deltas cannot be measured around calls from the outside
// because applicability checks sleep in virtual time and other tenants may
// interleave, so per-view counters are recorded inline.
func (c *CategoricalCache) insertWith(extra *CacheStats, inst miopen.Instance) {
	pat := inst.CacheKey()
	key := inst.Key()
	list := c.lists[pat]
	for i := range list {
		if list[i].key == key {
			c.lists[pat] = promote(list, i)
			return
		}
	}
	c.stats.Inserts++
	if extra != nil {
		extra.Inserts++
	}
	c.lists[pat] = append([]entry{{inst: inst, key: key}}, list...)
}

// Touch refreshes recency (same as re-inserting an existing entry).
func (c *CategoricalCache) Touch(inst miopen.Instance) { c.Insert(inst) }

// GetSub scans only the wanted pattern's list in MRU order and returns the
// first applicable instance, charging one check per candidate.
func (c *CategoricalCache) GetSub(proc *sim.Proc, lib *miopen.Library, want miopen.Instance, p *miopen.Problem) (miopen.Instance, bool) {
	return c.getSubWith(nil, false, proc, lib, want, p)
}

// getSubWith is GetSub with an optional per-view stats sink and, for shared
// caches, a residency guard: with requireLoaded set, candidates whose code
// objects are no longer resident (evicted under cross-tenant memory
// pressure) are skipped instead of handed out stale. The residency probe is
// a host-side map lookup and charges no applicability check.
func (c *CategoricalCache) getSubWith(extra *CacheStats, requireLoaded bool, proc *sim.Proc, lib *miopen.Library, want miopen.Instance, p *miopen.Problem) (miopen.Instance, bool) {
	c.stats.Queries++
	if extra != nil {
		extra.Queries++
	}
	proc.Sleep(lib.RT.Host().CacheQueryFixed)
	pat := want.CacheKey()
	// Iterate over a snapshot: CheckApplicable sleeps in virtual time, and on
	// a shared cache another tenant's Insert/promote may shift the live list's
	// backing array during that sleep. Re-reading list[i] after the check
	// could hand back a different (inapplicable) instance than was checked.
	list := c.snapshot(c.lists[pat])
	defer c.release(list)
	for i := range list {
		cand := list[i].inst
		if requireLoaded && !lib.IsLoaded(cand) {
			continue
		}
		c.stats.Lookups++
		if extra != nil {
			extra.Lookups++
		}
		if lib.CheckApplicable(proc, cand, p) {
			if requireLoaded && !lib.IsLoaded(cand) {
				continue // evicted while the check slept
			}
			c.promoteKey(pat, list[i].key)
			c.stats.Hits++
			if extra != nil {
				extra.Hits++
			}
			return cand, true
		}
	}
	return miopen.Instance{}, false
}

// GetSubAny extends GetSub across every pattern list — the wanted pattern
// first (most likely to hold a fit), then the remaining categories in
// stable declaration order. Costs are charged like GetSub: one fixed query
// plus one applicability check per candidate examined.
func (c *CategoricalCache) GetSubAny(proc *sim.Proc, lib *miopen.Library, want miopen.Instance, p *miopen.Problem) (miopen.Instance, bool) {
	return c.getSubAnyWith(nil, proc, lib, want, p)
}

// getSubAnyWith is GetSubAny with the optional per-view stats sink.
// GetSubAny already guards residency for every caller (forced reuse must
// never trigger a load), so no requireLoaded switch is needed.
func (c *CategoricalCache) getSubAnyWith(extra *CacheStats, proc *sim.Proc, lib *miopen.Library, want miopen.Instance, p *miopen.Problem) (miopen.Instance, bool) {
	c.stats.Queries++
	if extra != nil {
		extra.Queries++
	}
	proc.Sleep(lib.RT.Host().CacheQueryFixed)
	first := want.CacheKey()
	wantKey := want.Key()
	scan := func(pat miopen.Pattern) (miopen.Instance, bool) {
		// Snapshot for the same reason as getSubWith: checks sleep, tenants
		// sharing the cache may reorder the live list meanwhile.
		list := c.snapshot(c.lists[pat])
		defer c.release(list)
		for i := range list {
			cand := list[i].inst
			if list[i].key == wantKey || !lib.IsLoaded(cand) {
				continue
			}
			c.stats.Lookups++
			if extra != nil {
				extra.Lookups++
			}
			if lib.CheckApplicable(proc, cand, p) {
				if !lib.IsLoaded(cand) {
					continue // evicted while the check slept
				}
				c.promoteKey(pat, list[i].key)
				c.stats.Hits++
				if extra != nil {
					extra.Hits++
				}
				return cand, true
			}
		}
		return miopen.Instance{}, false
	}
	if inst, ok := scan(first); ok {
		return inst, true
	}
	for _, pat := range allPatterns {
		if pat == first {
			continue
		}
		if inst, ok := scan(pat); ok {
			return inst, true
		}
	}
	return miopen.Instance{}, false
}

// Stats returns the accumulated counters.
func (c *CategoricalCache) Stats() CacheStats { return c.stats }

// Len returns the total number of cached instances.
func (c *CategoricalCache) Len() int {
	n := 0
	for _, l := range c.lists {
		n += len(l)
	}
	return n
}

// PatternLen returns the number of cached instances of one pattern.
func (c *CategoricalCache) PatternLen(p miopen.Pattern) int { return len(c.lists[p]) }

// NaiveCache is the flat cache used by the PaSK-R ablation: a single list
// mixing all patterns, exhaustively scanned on every query to find the
// best-performing applicable solution (paper §IV: PaSK-R "exhaustively
// checks the applicability of every cached solution"). Every query pays one
// applicability check per cached entry — the overhead the categorical
// organization eliminates (paper Fig 9b).
type NaiveCache struct {
	list  []miopen.Instance
	stats CacheStats
}

// NewNaiveCache returns an empty naive cache.
func NewNaiveCache() *NaiveCache { return &NaiveCache{} }

// Insert adds or refreshes an instance at the head.
func (c *NaiveCache) Insert(inst miopen.Instance) {
	for i := range c.list {
		if c.list[i].Key() == inst.Key() {
			c.list = promote(c.list, i)
			return
		}
	}
	c.stats.Inserts++
	c.list = append([]miopen.Instance{inst}, c.list...)
}

// Touch refreshes recency.
func (c *NaiveCache) Touch(inst miopen.Instance) { c.Insert(inst) }

// GetSub checks every cached instance regardless of pattern and returns the
// applicable one with the best predicted performance.
func (c *NaiveCache) GetSub(proc *sim.Proc, lib *miopen.Library, want miopen.Instance, p *miopen.Problem) (miopen.Instance, bool) {
	c.stats.Queries++
	proc.Sleep(lib.RT.Host().CacheQueryFixed)
	best := -1
	var bestEst time.Duration
	for i := range c.list {
		c.stats.Lookups++
		if !lib.CheckApplicable(proc, c.list[i], p) {
			continue
		}
		est := miopen.EstimateTime(lib.Reg.Ctx().Dev, c.list[i].Sol, p)
		if best < 0 || est < bestEst {
			best, bestEst = i, est
		}
	}
	if best < 0 {
		return miopen.Instance{}, false
	}
	inst := c.list[best]
	c.list = promote(c.list, best)
	c.stats.Hits++
	return inst, true
}

// GetSubAny scans the flat list like GetSub but skips the unloadable wanted
// instance and any entry whose module is no longer resident.
func (c *NaiveCache) GetSubAny(proc *sim.Proc, lib *miopen.Library, want miopen.Instance, p *miopen.Problem) (miopen.Instance, bool) {
	c.stats.Queries++
	proc.Sleep(lib.RT.Host().CacheQueryFixed)
	best := -1
	var bestEst time.Duration
	for i := range c.list {
		if c.list[i].Key() == want.Key() || !lib.IsLoaded(c.list[i]) {
			continue
		}
		c.stats.Lookups++
		if !lib.CheckApplicable(proc, c.list[i], p) {
			continue
		}
		est := miopen.EstimateTime(lib.Reg.Ctx().Dev, c.list[i].Sol, p)
		if best < 0 || est < bestEst {
			best, bestEst = i, est
		}
	}
	if best < 0 {
		return miopen.Instance{}, false
	}
	inst := c.list[best]
	c.list = promote(c.list, best)
	c.stats.Hits++
	return inst, true
}

// Stats returns the accumulated counters.
func (c *NaiveCache) Stats() CacheStats { return c.stats }

// Len returns the number of cached instances.
func (c *NaiveCache) Len() int { return len(c.list) }
