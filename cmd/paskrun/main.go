// Command paskrun executes one model under one scheme on a simulated device
// and prints the run's report, phase breakdown and an ASCII timeline showing
// how PASK overlaps parsing, loading and execution.
//
// Usage:
//
//	paskrun -model res -scheme PaSK [-device MI100] [-batch 1] [-width 100]
//	        [-faults "transient=0.1,permanent=0.02,seed=7"] [-trace out.json]
//	        [-record-profile res.profile.json] [-warmup res.profile.json]
//
// With -faults the run faces a seeded fault plan (keys: transient, permanent,
// spike, disable, seed, burst, spike_ms, reset_ms) and the report gains the
// retry, negative-cache and degradation-ladder counters.
//
// With -record-profile the run's observed load order is written as a versioned
// warmup manifest; -warmup replays such a manifest through a prefetcher that
// overlaps context init. A missing, corrupt or stale manifest never fails the
// run — it degrades to a plain cold start.
//
// With -trace the run's full timeline — per-thread spans, counter series,
// registry events — is written as Chrome trace_event JSON, loadable in
// chrome://tracing and ui.perfetto.dev.
package main

import (
	"cmp"
	"flag"
	"fmt"
	"os"
	"slices"
	"time"

	"pask/internal/core"
	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/faults"
	"pask/internal/metrics"
	"pask/internal/serving"
	"pask/internal/sim"
	"pask/internal/trace"
	"pask/internal/warmup"
)

func main() {
	model := flag.String("model", "res", "zoo model abbreviation")
	schemeName := flag.String("scheme", "PaSK", "scheme: Baseline, NNV12, Ideal, PaSK, PaSK-I, PaSK-R")
	devName := flag.String("device", "MI100", "device profile: MI100, A100, 6900XT")
	batch := flag.Int("batch", 1, "inference batch size")
	width := flag.Int("width", 100, "timeline width in characters")
	blasScope := flag.Bool("blas-scope", false, "enable the BLAS-scope extension")
	faultsFlag := flag.String("faults", "", "fault plan, e.g. \"transient=0.1,permanent=0.02,seed=7\"")
	traceOut := flag.String("trace", "", "write the run's Chrome trace_event JSON to this file")
	recordPath := flag.String("record-profile", "", "write the run's observed load profile as a warmup manifest")
	warmupPath := flag.String("warmup", "", "replay a recorded warmup manifest before the run (corrupt/stale manifests are ignored)")
	flag.Parse()

	prof, ok := device.ProfileByName(*devName)
	if !ok {
		fatal(fmt.Errorf("unknown device %q", *devName))
	}
	ms, err := experiments.PrepareModel(*model, *batch, prof)
	if err != nil {
		fatal(err)
	}

	scheme := core.Scheme(*schemeName)
	found := false
	for _, s := range core.Schemes() {
		if s == scheme {
			found = true
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown scheme %q (one of %v)", *schemeName, core.Schemes()))
	}

	var inj *faults.Injector
	if *faultsFlag != "" {
		plan, leftover, perr := faults.ParsePlan(*faultsFlag)
		if perr != nil {
			fatal(perr)
		}
		if len(leftover) > 0 {
			fatal(fmt.Errorf("unknown fault keys in -faults: %v", leftover))
		}
		inj = faults.New(plan)
		restore := serving.InstallFaults(ms, inj)
		defer restore()
	}

	// Run with a retained process so the tracer's spans are available.
	pr := ms.NewProcess()
	if inj != nil {
		pr.RT.SetLoadFaults(inj)
		inj.ArmReset(pr.Env, pr.RT.UnloadAll)
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
		pr.Record(rec)
	}
	// Warmup: replay a recorded manifest concurrently with context init, and
	// observe this run's own load order when recording or accounting replay.
	var wrec *warmup.Recorder
	if *recordPath != "" || *warmupPath != "" {
		wrec = warmup.NewRecorder()
	}
	var pf *warmup.Prefetcher
	if *warmupPath != "" {
		// Missing or corrupt manifest: start cold, never fail.
		if man, merr := warmup.ReadFile(*warmupPath); merr == nil && len(man.Entries) > 0 {
			pf = warmup.Start(pr.Env, pr.RT, man, rec)
		}
	}
	opts := core.Options{BlasScope: *blasScope}
	if wrec != nil {
		opts.Profile = wrec
	}
	var spans []metrics.Span
	var window [2]time.Duration
	rep, res, err := runWithSpans(ms, pr, scheme, opts, rec, &spans, &window)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s x %s on %s (batch %d)\n\n", *model, scheme, prof.Name, *batch)
	fmt.Printf("cold start      %10.2fms\n", float64(rep.Total)/1e6)
	fmt.Printf("GPU utilization %9.1f%%\n", 100*rep.Utilization())
	fmt.Printf("code objects    %10d loaded (%0.1f MB)\n", rep.Loads, float64(rep.LoadedBytes)/1e6)
	if res != nil {
		fmt.Printf("reuse           %10d queries, %d hits (%.0f%%), %d loads skipped, milestone %d\n",
			res.Cache.Queries, res.Cache.Hits, 100*hitRate(res), res.SkippedLoads, res.Milestone)
	}

	fmt.Printf("\nbreakdown:\n")
	type kv struct {
		c metrics.Category
		v float64
	}
	var items []kv
	for c, v := range rep.Breakdown {
		items = append(items, kv{c, float64(v)})
	}
	slices.SortFunc(items, func(a, b kv) int { return cmp.Compare(b.v, a.v) })
	for _, it := range items {
		fmt.Printf("  %-9s %8.2fms  %5.1f%%\n", it.c, it.v/1e6, 100*it.v/float64(rep.Total))
	}

	if inj != nil {
		fs := inj.Stats()
		hs := pr.RT.Stats()
		fmt.Printf("\nfaults injected: %d transient, %d corrupt reads, %d spikes, %d resets\n",
			fs.TransientFaults, fs.CorruptReads, fs.LatencySpikes, fs.Resets)
		fmt.Printf("recovery:        %d load retries, %d permanent failures, %d negative-cache hits\n",
			hs.TransientRetries, hs.PermanentFailures, hs.NegativeHits)
		if res != nil {
			fmt.Printf("degradation:     %d load failures, %d forced reuse, %d ladder fallbacks, %d elided transforms\n",
				res.LoadFailures, res.ForcedReuse, res.LadderFallbacks, res.ElidedXformFailures)
		}
	}

	if pf != nil {
		st := pf.Account(wrec.Paths(), pr.Env.Now())
		fmt.Printf("\nwarmup replay:   %d/%d prefetched (%d coalesced), %d hits, %d misses, %d wasted, %d stale\n",
			st.Loaded+st.Coalesced, st.Entries, st.Coalesced, st.Hits, st.Misses, st.Wasted, st.Stale)
	}
	if *recordPath != "" {
		man := wrec.Manifest(ms.Store, ms.Spec.Abbr, *batch, prof)
		if werr := warmup.WriteFile(*recordPath, man); werr != nil {
			fatal(werr)
		}
		fmt.Printf("\nload profile (%d objects, %d substitutions) written to %s\n",
			len(man.Entries), len(man.Substitutions), *recordPath)
	}

	fmt.Printf("\ntimeline:\n%s", metrics.Timeline(spans, window[0], window[1], *width))

	if *traceOut != "" {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fatal(ferr)
		}
		if werr := rec.WriteChrome(f); werr != nil {
			f.Close()
			fatal(werr)
		}
		if cerr := f.Close(); cerr != nil {
			fatal(cerr)
		}
		fmt.Printf("\ntrace written to %s (open in ui.perfetto.dev)\n", *traceOut)
	}
}

func hitRate(res *core.Result) float64 {
	if res.Cache.Queries == 0 {
		return 0
	}
	return float64(res.Cache.Hits) / float64(res.Cache.Queries)
}

func runWithSpans(ms *experiments.ModelSetup, pr *experiments.Process, scheme core.Scheme, opts core.Options, rec *trace.Recorder, spans *[]metrics.Span, window *[2]time.Duration) (*metrics.Report, *core.Result, error) {
	rep := &metrics.Report{}
	var res *core.Result
	var runErr error
	pr.Env.Spawn("main", func(p *sim.Proc) {
		defer pr.GPU.CloseAll()
		pr.Runner.RT.InitContext(p)
		if runErr = pr.Runner.Lib.LoadResidents(p); runErr != nil {
			return
		}
		model := ms.Model
		if scheme == core.SchemeNNV12 {
			model = ms.Uniform
		}
		if scheme == core.SchemeIdeal {
			if runErr = pr.Runner.PreloadAll(p, model); runErr != nil {
				return
			}
		}
		busy0 := pr.GPU.BusyTime()
		loads0 := pr.RT.Stats()
		t0 := p.Now()
		rec.Instant("run", "run-start", t0,
			metrics.Attr{Key: "scheme", Value: string(scheme)},
			metrics.Attr{Key: "model", Value: ms.Spec.Abbr})
		switch scheme {
		case core.SchemeBaseline:
			runErr = pr.Runner.RunBaseline(p, model)
		case core.SchemeIdeal, core.SchemeNNV12, core.SchemePaSKI:
			_, runErr = core.RunInterleaved(p, pr.Runner, model, core.NewCategoricalCache(), false, opts)
		case core.SchemePaSKR:
			c := core.NewNaiveCache()
			core.SeedResidents(c, pr.Runner.Lib)
			res, runErr = core.RunSequentialReuse(p, pr.Runner, model, c)
		default:
			c := core.NewCategoricalCache()
			core.SeedResidents(c, pr.Runner.Lib)
			res, runErr = core.RunInterleaved(p, pr.Runner, model, c, true, opts)
		}
		t1 := p.Now()
		rec.Instant("run", "run-end", t1)
		rep.Total = t1 - t0
		rep.GPUBusy = pr.GPU.BusyTime() - busy0
		rep.Loads = pr.RT.Stats().ModuleLoads - loads0.ModuleLoads
		rep.LoadedBytes = pr.RT.Stats().BytesLoaded - loads0.BytesLoaded
		rep.Breakdown = metrics.Breakdown(pr.Tracer.Spans(), t0, t1, metrics.DefaultPriority())
		*spans = pr.Tracer.Spans()
		window[0], window[1] = t0, t1
	})
	if err := pr.Env.Run(); err != nil {
		return nil, nil, err
	}
	return rep, res, runErr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paskrun:", err)
	os.Exit(1)
}
