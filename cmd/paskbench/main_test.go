package main

import (
	"os"
	"strings"
	"testing"

	"pask/internal/experiments"
)

// TestMenuDriftGuard asserts every registered experiment name appears in
// the EXPERIMENTS.md menu and in the paskbench usage text, so the
// registry, the docs and the CLI can't silently diverge: registering an
// experiment without documenting it (or documenting one that no longer
// exists in the usage string) fails CI.
func TestMenuDriftGuard(t *testing.T) {
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	menu := string(doc)
	usage := usageMenu()
	for _, name := range experiments.Names() {
		if !strings.Contains(menu, name) {
			t.Errorf("experiment %q not mentioned in EXPERIMENTS.md", name)
		}
		if !strings.Contains(usage, name) {
			t.Errorf("experiment %q missing from paskbench usage", name)
		}
	}
	// The verbatim -exp menu in EXPERIMENTS.md must spell out exactly the
	// sorted registry names (whitespace-normalized — the list wraps across
	// lines), so the docs can't drift to a stale enumeration.
	flat := strings.Join(strings.Fields(menu), " ")
	wantMenu := "list, all, " + strings.Join(experiments.Names(), ", ")
	if !strings.Contains(flat, wantMenu) {
		t.Errorf("EXPERIMENTS.md -exp menu is stale: expected the verbatim list %q", wantMenu)
	}
	// The generated usage must not advertise names the registry lost.
	for _, tok := range strings.Split(usage, ", ") {
		if tok == "list" || tok == "all" {
			continue
		}
		if _, ok := experiments.Lookup(tok); !ok {
			t.Errorf("usage advertises %q, which is not registered", tok)
		}
	}
}

// TestMenuCoversLegacyNames pins that every historical -exp name keeps
// resolving through the registry.
func TestMenuCoversLegacyNames(t *testing.T) {
	legacy := []string{
		"coldstart", "warmup", "cacheimage", "fig1a", "fig1b", "fig4", "fig6",
		"fig7", "fig8", "fig9", "table2", "ext-blas", "ext-precision",
		"ext-background", "ablations", "ext-crossmodel", "chaos",
		"multitenant", "overload", "placement",
	}
	for _, name := range legacy {
		if _, ok := experiments.Lookup(name); !ok {
			t.Errorf("legacy -exp name %q no longer registered", name)
		}
	}
	if _, ok := experiments.Lookup("predictive"); !ok {
		t.Error("predictive not registered")
	}
}
