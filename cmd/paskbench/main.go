// Command paskbench regenerates every table and figure of the paper's
// evaluation on the simulated stack, plus this implementation's own
// systems experiments, through the shared experiment registry.
//
// Usage:
//
//	paskbench [-exp list|all|<name>]
//	          [-models alex,vgg,...] [-batches 1,4,16,64,128] [-quick]
//	          [-faults "transient=0.1,permanent=0.02,seed=7,model=res,requests=60"]
//	          [-trace out.json] [-validate-trace file.json] [-out BENCH_<name>.json]
//
// -exp list prints the registered experiment menu with one-line
// descriptions; -exp all runs the paper-figure sweep; any other name
// dispatches that experiment through the registry with the uniform
// options (-quick shrinks it to CI smoke size, -models/-batches narrow
// the selection where the experiment honors them).
//
// Experiments with a machine-readable payload (warmup, cacheimage,
// overload, placement, predictive, ...) write it to -out — default
// BENCH_<name>.json — wrapped in the versioned result envelope
// {"schema": 1, "experiment": ..., "result": ...}. With -trace the run's
// timeline is exported as Chrome trace_event JSON, loadable in
// ui.perfetto.dev; -validate-trace checks such a file's structural
// invariants and prints its summary, then exits.
//
// -faults bypasses the registry and runs a single chaos cell from a
// combined spec whose fault keys (transient, permanent, spike, disable,
// seed, burst, spike_ms, reset_ms) feed the fault plan and whose scenario
// keys (model, batch, device, requests, interval_ms, evict) shape the
// trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pask/internal/device"
	"pask/internal/experiments"
	"pask/internal/faults"
	"pask/internal/serving"
	"pask/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+usageMenu())
	modelsFlag := flag.String("models", "", "comma-separated model abbreviations (default: all twelve)")
	batchesFlag := flag.String("batches", "", "comma-separated batch sizes (default: experiment-specific)")
	format := flag.String("format", "table", "output format: table or csv")
	faultsFlag := flag.String("faults", "", "fault-injection spec; runs one chaos cell (see package doc for keys)")
	quick := flag.Bool("quick", false, "shrink experiment configurations to CI smoke size")
	traceOut := flag.String("trace", "", "write the run's Chrome trace_event JSON here")
	benchOut := flag.String("out", "", "write the machine-readable result envelope here (default BENCH_<exp>.json for bench experiments)")
	validateTrace := flag.String("validate-trace", "", "validate a Chrome trace JSON file, print its summary and exit")
	flag.Parse()
	formatCSV = *format == "csv"

	if *validateTrace != "" {
		if err := runValidateTrace(*validateTrace); err != nil {
			fatal(err)
		}
		return
	}

	if *faultsFlag != "" {
		if err := runChaosCell(*faultsFlag); err != nil {
			fatal(err)
		}
		return
	}

	if *exp == "list" {
		printMenu()
		return
	}

	opts := experiments.Options{Quick: *quick, Out: *benchOut}
	if *modelsFlag != "" {
		opts.Models = strings.Split(*modelsFlag, ",")
	}
	if *batchesFlag != "" {
		for _, b := range strings.Split(*batchesFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(b))
			if err != nil {
				fatal(fmt.Errorf("bad batch %q: %w", b, err))
			}
			opts.Batches = append(opts.Batches, v)
		}
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			if !e.InAll {
				continue
			}
			// The sweep prints tables only: no bench files, no traces.
			if err := runExperiment(e, opts, "", ""); err != nil {
				fatal(fmt.Errorf("%s: %w", e.Name, err))
			}
		}
		return
	}

	e, ok := experiments.Lookup(*exp)
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q; -exp list prints the menu (%s)",
			*exp, strings.Join(experiments.Names(), ", ")))
	}
	if err := runExperiment(e, opts, *benchOut, *traceOut); err != nil {
		fatal(fmt.Errorf("%s: %w", e.Name, err))
	}
}

// usageMenu is the -exp flag's menu text, generated from the registry so
// the usage string can't drift from the registered names.
func usageMenu() string {
	return "list, all, " + strings.Join(experiments.Names(), ", ")
}

// printMenu prints the registered experiments with their descriptions.
func printMenu() {
	fmt.Println("registered experiments (-exp <name>):")
	for _, e := range experiments.All() {
		tags := ""
		if e.InAll {
			tags += " [all]"
		}
		if e.Bench {
			tags += " [bench: " + e.DefaultOut() + "]"
		}
		fmt.Printf("  %-15s %s%s\n", e.Name, e.Description, tags)
	}
}

// runExperiment dispatches one registered experiment: run, print tables,
// write the envelope to out (defaulted for bench experiments) and export
// the trace.
func runExperiment(e *experiments.Experiment, opts experiments.Options, out, traceOut string) error {
	var rec *trace.Recorder
	if traceOut != "" {
		rec = trace.New()
		opts.Trace = rec
	}
	res, err := e.Run(opts)
	if err != nil {
		return err
	}
	for _, tbl := range res.Tables {
		if err := show(tbl, nil); err != nil {
			return err
		}
	}
	if out == "" && e.Bench {
		out = e.DefaultOut()
	}
	if out != "" && res.Bench != nil {
		data, err := json.MarshalIndent(experiments.NewEnvelope(e.Name, res), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nbench payload written to %s\n", out)
	}
	if rec != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open in ui.perfetto.dev)\n", traceOut)
	}
	return nil
}

// runChaosCell runs a single fault-injection cell from the combined -faults
// spec: faults.ParsePlan keeps the plan keys and hands back the scenario
// keys.
func runChaosCell(spec string) error {
	plan, leftover, err := faults.ParsePlan(spec)
	if err != nil {
		return err
	}
	cfg := serving.ChaosConfig{
		Seed:       plan.Seed,
		Transients: []float64{plan.TransientRate},
		Permanents: []float64{plan.PermanentRate},
		Spike:      plan.SpikeRate,
		SpikeExtra: plan.SpikeExtra,
		ResetAt:    plan.DeviceResetAt,
	}
	for key, val := range leftover {
		switch key {
		case "model":
			cfg.Model = val
		case "batch":
			cfg.Batch, err = strconv.Atoi(val)
		case "device":
			prof, ok := device.ProfileByName(val)
			if !ok {
				return fmt.Errorf("chaos: unknown device %q", val)
			}
			cfg.Profile = prof
		case "requests":
			cfg.Requests, err = strconv.Atoi(val)
		case "interval_ms":
			var f float64
			f, err = strconv.ParseFloat(val, 64)
			cfg.MeanInterval = time.Duration(f * float64(time.Millisecond))
		case "evict":
			cfg.EvictEvery, err = strconv.Atoi(val)
		default:
			return fmt.Errorf("chaos: unknown spec key %q", key)
		}
		if err != nil {
			return fmt.Errorf("chaos: bad %s=%q: %w", key, val, err)
		}
	}
	tbl, err := serving.Chaos(cfg)
	return show(tbl, err)
}

// runValidateTrace checks a Chrome trace JSON file's structural invariants
// and prints its summary.
func runValidateTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sum, err := trace.ValidateChrome(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: OK — %d events (%d spans, %d counter series) on %d tracks %v, %.2fms span\n",
		path, sum.Events, sum.Spans, sum.Counters, len(sum.Tracks), sum.Tracks, sum.MaxTs/1e3)
	return nil
}

var formatCSV bool

func show(tbl *experiments.Table, err error) error {
	if err != nil {
		return err
	}
	if formatCSV {
		fmt.Printf("# %s — %s\n%s\n", tbl.ID, tbl.Title, tbl.CSV())
		return nil
	}
	fmt.Println(tbl)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paskbench:", err)
	os.Exit(1)
}
