// Command paskbench regenerates every table and figure of the paper's
// evaluation on the simulated stack.
//
// Usage:
//
//	paskbench [-exp all|coldstart|warmup|cacheimage|fig1a|fig1b|fig4|fig6|fig7|fig8|fig9|table2|ext-blas|ext-precision|ext-background|chaos|multitenant|overload|placement]
//	          [-models alex,vgg,...] [-batches 1,4,16,64,128] [-quick]
//	          [-faults "transient=0.1,permanent=0.02,seed=7,model=res,requests=60"]
//	          [-trace out.json] [-validate-trace file.json] [-out BENCH_warmup.json]
//
// -exp multitenant compares isolated per-instance GPU runtimes against one
// shared refcounted runtime and cross-model cache per GPU; -quick shrinks the
// configuration to the CI smoke size.
// -exp chaos runs the default fault-injection sweep (fault rates x policies);
// -faults runs a single sweep cell from a combined spec whose fault keys
// (transient, permanent, spike, disable, seed, burst, spike_ms, reset_ms) feed
// the plan and whose scenario keys (model, batch, device, requests,
// interval_ms, evict) shape the trace.
// -exp coldstart runs one PaSK cold start (first -models entry, default res);
// with -trace it exports the run's full timeline as Chrome trace_event JSON,
// loadable in ui.perfetto.dev. -validate-trace checks such a file's structural
// invariants and prints its summary, then exits.
// -exp warmup compares cold, recording and profile-replay (warmed) cold
// starts across every device profile and writes the comparison to -out
// (default BENCH_warmup.json); with -trace it also exports the first warmed
// run's timeline. -quick shrinks it to the CI smoke size (model alex).
// -exp cacheimage builds a content-addressed kernel-cache image per device
// profile, pre-distributes it to a simulated fleet at varying coverage, and
// measures time-to-first-inference for warm attach versus cold start; a chaos
// arm corrupts and truncates transfers and kills nodes mid-pull to prove the
// validation ladder degrades to cold starts instead of wrong results. It
// writes the comparison to -out (default BENCH_cacheimage.json); with -trace
// it exports the first device's chaos-arm counters. -quick shrinks the fleet
// to the CI smoke size.
// -exp overload compares the unprotected, shedding and brownout arms of the
// overload-protection layer on a Poisson trace with a mid-trace device reset
// and a burst trace under a slow-loader storm, across every device profile.
// It writes the machine-readable comparison to -out (default
// BENCH_overload.json); with -trace it exports the first device's
// brownout-arm timeline (breaker state and queue-pressure counters).
// -quick shrinks the traces to the CI smoke size.
// -exp placement compares tenant-placement policies (first-fit,
// residency-affinity, load-balanced) with cross-GPU cache peering off and on,
// on a heterogeneous four-GPU fleet (two primary-profile GPUs plus two
// cross-vendor GPUs split across NUMA nodes) for every device profile,
// measuring per-tenant time-to-first-inference. It writes the comparison to
// -out (default BENCH_placement.json); with -trace it exports the first
// fleet's affinity+peering timeline. -quick shrinks the arrival sequence to
// the CI smoke size.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"pask/internal/device"
	"strconv"
	"strings"

	"pask/internal/core"
	"pask/internal/experiments"
	"pask/internal/faults"
	"pask/internal/serving"
	"pask/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, coldstart, warmup, cacheimage, fig1a, fig1b, fig4, fig6, fig7, fig8, fig9, table2, ext-blas, ext-precision, ext-background, ablations, ext-crossmodel, chaos, multitenant, overload, placement)")
	modelsFlag := flag.String("models", "", "comma-separated model abbreviations (default: all twelve)")
	batchesFlag := flag.String("batches", "1,4,16,64,128", "comma-separated batch sizes for table2")
	format := flag.String("format", "table", "output format: table or csv")
	faultsFlag := flag.String("faults", "", "fault-injection spec; runs one chaos cell (see package doc for keys)")
	quick := flag.Bool("quick", false, "shrink experiment configurations to CI smoke size")
	traceOut := flag.String("trace", "", "with -exp coldstart, warmup, cacheimage, overload or placement: write the run's Chrome trace_event JSON here")
	benchOut := flag.String("out", "", "with -exp warmup, cacheimage, overload or placement: write the machine-readable comparison here (default BENCH_<exp>.json)")
	validateTrace := flag.String("validate-trace", "", "validate a Chrome trace JSON file, print its summary and exit")
	flag.Parse()
	formatCSV = *format == "csv"

	if *validateTrace != "" {
		if err := runValidateTrace(*validateTrace); err != nil {
			fatal(err)
		}
		return
	}

	if *faultsFlag != "" {
		if err := runChaos(*faultsFlag); err != nil {
			fatal(err)
		}
		return
	}

	models := experiments.AllModelAbbrs()
	if *modelsFlag != "" {
		models = strings.Split(*modelsFlag, ",")
	}
	var batches []int
	for _, b := range strings.Split(*batchesFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(b))
		if err != nil {
			fatal(fmt.Errorf("bad batch %q: %w", b, err))
		}
		batches = append(batches, v)
	}

	// coldstart is a single traced run, not part of the -exp all sweep.
	if *exp == "coldstart" {
		model := "res"
		if *modelsFlag != "" {
			model = models[0]
		}
		if err := runColdstart(model, batches[0], *traceOut); err != nil {
			fatal(fmt.Errorf("coldstart: %w", err))
		}
		return
	}

	// warmup is a single cross-device comparison, not part of -exp all.
	if *exp == "warmup" {
		model := "res"
		if *quick {
			model = "alex"
		}
		if *modelsFlag != "" {
			model = models[0]
		}
		out := *benchOut
		if out == "" {
			out = "BENCH_warmup.json"
		}
		if err := runWarmup(model, batches[0], out, *traceOut); err != nil {
			fatal(fmt.Errorf("warmup: %w", err))
		}
		return
	}

	// cacheimage is a single cross-device fleet sweep, not part of -exp all
	// (it measures the distribution layer, not a paper figure).
	if *exp == "cacheimage" {
		model := ""
		if *modelsFlag != "" {
			model = models[0]
		}
		out := *benchOut
		if out == "" {
			out = "BENCH_cacheimage.json"
		}
		if err := runCacheImage(model, batches[0], *quick, out, *traceOut); err != nil {
			fatal(fmt.Errorf("cacheimage: %w", err))
		}
		return
	}

	// overload is a single cross-device protection comparison, not part of
	// -exp all (it measures the serving layer under deliberate abuse, not a
	// paper figure).
	if *exp == "overload" {
		model := "res"
		if *modelsFlag != "" {
			model = models[0]
		}
		out := *benchOut
		if out == "" {
			out = "BENCH_overload.json"
		}
		if err := runOverload(model, batches[0], *quick, out, *traceOut); err != nil {
			fatal(fmt.Errorf("overload: %w", err))
		}
		return
	}

	// placement is a single cross-device fleet comparison, not part of -exp
	// all (it measures the multi-GPU serving layer, not a paper figure).
	if *exp == "placement" {
		var pmodels []string
		if *modelsFlag != "" {
			pmodels = models
		}
		out := *benchOut
		if out == "" {
			out = "BENCH_placement.json"
		}
		if err := runPlacement(pmodels, batches[0], *quick, out, *traceOut); err != nil {
			fatal(fmt.Errorf("placement: %w", err))
		}
		return
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}

	run("fig1a", func() error {
		tbl, _, err := experiments.Fig1a(models)
		return show(tbl, err)
	})
	run("fig1b", func() error {
		tbl, _, err := experiments.Fig1b(models)
		return show(tbl, err)
	})
	run("fig4", func() error {
		tbl, err := experiments.Fig4()
		return show(tbl, err)
	})
	run("fig6", func() error {
		ta, tb, _, err := experiments.Fig6(models)
		if err != nil {
			return err
		}
		if err := show(ta, nil); err != nil {
			return err
		}
		return show(tb, nil)
	})
	run("table2", func() error {
		tbl, _, err := experiments.Table2(models, batches)
		return show(tbl, err)
	})
	run("fig7", func() error {
		tbl, _, err := experiments.Fig7(models)
		return show(tbl, err)
	})
	run("fig8", func() error {
		tbl, _, err := experiments.Fig8(models)
		return show(tbl, err)
	})
	run("fig9", func() error {
		ta, tb, _, err := experiments.Fig9(convOnly(models))
		if err != nil {
			return err
		}
		if err := show(ta, nil); err != nil {
			return err
		}
		return show(tb, nil)
	})
	run("ext-blas", func() error {
		tbl, err := experiments.ExtBlasScope()
		return show(tbl, err)
	})
	run("ext-precision", func() error {
		tbl, err := experiments.ExtPrecision(convOnly(models))
		return show(tbl, err)
	})
	run("ext-background", func() error {
		tbl, err := experiments.ExtBackground(convOnly(models))
		return show(tbl, err)
	})
	run("ablations", func() error {
		tbl, _, err := experiments.Ablations(convOnly(models))
		return show(tbl, err)
	})
	run("ext-crossmodel", func() error {
		pairs := [][2]string{{"res", "vgg"}, {"alex", "res"}, {"reg", "eff"}}
		tbl := &experiments.Table{ID: "Ext-CrossModel",
			Title:   "Cross-model kernel reuse: model B cold start in a process warmed by model A (MI100)",
			Headers: []string{"A -> B", "fresh process", "warm process", "reuse hits"}}
		for _, pr := range pairs {
			res, err := experiments.CrossModelReuse(pr[0], pr[1], device.MI100())
			if err != nil {
				return err
			}
			tbl.Rows = append(tbl.Rows, []string{
				pr[0] + " -> " + pr[1],
				fmt.Sprintf("%.1fms", res.FreshMs),
				fmt.Sprintf("%.1fms", res.SharedMs),
				fmt.Sprintf("%d", res.Hits)})
		}
		tbl.Notes = append(tbl.Notes,
			"benefit is bounded by problem-configuration overlap between the models; foreign specialists at the cache head can add lookups")
		return show(tbl, nil)
	})
	run("chaos", func() error {
		tbl, err := serving.Chaos(serving.ChaosConfig{})
		return show(tbl, err)
	})
	run("multitenant", func() error {
		cfg := serving.MultitenantConfig{}
		if *quick {
			cfg.PerTenant = 2
			cfg.Interval = 4 * time.Millisecond
		}
		tbl, _, err := serving.Multitenant(cfg)
		return show(tbl, err)
	})
}

// runChaos runs a single fault-injection cell from the combined -faults spec:
// faults.ParsePlan keeps the plan keys and hands back the scenario keys.
func runChaos(spec string) error {
	plan, leftover, err := faults.ParsePlan(spec)
	if err != nil {
		return err
	}
	cfg := serving.ChaosConfig{
		Seed:       plan.Seed,
		Transients: []float64{plan.TransientRate},
		Permanents: []float64{plan.PermanentRate},
		Spike:      plan.SpikeRate,
		SpikeExtra: plan.SpikeExtra,
		ResetAt:    plan.DeviceResetAt,
	}
	for key, val := range leftover {
		switch key {
		case "model":
			cfg.Model = val
		case "batch":
			cfg.Batch, err = strconv.Atoi(val)
		case "device":
			prof, ok := device.ProfileByName(val)
			if !ok {
				return fmt.Errorf("chaos: unknown device %q", val)
			}
			cfg.Profile = prof
		case "requests":
			cfg.Requests, err = strconv.Atoi(val)
		case "interval_ms":
			var f float64
			f, err = strconv.ParseFloat(val, 64)
			cfg.MeanInterval = time.Duration(f * float64(time.Millisecond))
		case "evict":
			cfg.EvictEvery, err = strconv.Atoi(val)
		default:
			return fmt.Errorf("chaos: unknown spec key %q", key)
		}
		if err != nil {
			return fmt.Errorf("chaos: bad %s=%q: %w", key, val, err)
		}
	}
	tbl, err := serving.Chaos(cfg)
	return show(tbl, err)
}

// runColdstart executes one PaSK cold start and, when traceOut is non-empty,
// exports the recorded timeline as Chrome trace_event JSON.
func runColdstart(model string, batch int, traceOut string) error {
	ms, err := experiments.PrepareModel(model, batch, device.MI100())
	if err != nil {
		return err
	}
	var rec *trace.Recorder
	if traceOut != "" {
		rec = trace.New()
	}
	rep, res, err := ms.RunSchemeTraced(core.SchemePaSK, core.Options{}, rec)
	if err != nil {
		return err
	}
	tbl := &experiments.Table{ID: "ColdStart",
		Title:   fmt.Sprintf("PaSK cold start: %s on MI100 (batch %d)", model, batch),
		Headers: []string{"metric", "value"},
		Rows: [][]string{
			{"cold start", fmt.Sprintf("%.2fms", float64(rep.Total)/1e6)},
			{"GPU utilization", fmt.Sprintf("%.1f%%", 100*rep.Utilization())},
			{"code objects loaded", fmt.Sprintf("%d (%.1f MB)", rep.Loads, float64(rep.LoadedBytes)/1e6)},
			{"reuse", fmt.Sprintf("%d queries, %d hits, %d loads skipped", res.Cache.Queries, res.Cache.Hits, res.SkippedLoads)},
			{"milestone", fmt.Sprintf("%d", res.Milestone)},
		}}
	if err := show(tbl, nil); err != nil {
		return err
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\ntrace written to %s (open in ui.perfetto.dev)\n", traceOut)
	}
	return nil
}

// runWarmup runs the cold/recorded/warmed comparison across every device
// profile, prints the table and writes the machine-readable bench payload.
func runWarmup(model string, batch int, out, traceOut string) error {
	var rec *trace.Recorder
	if traceOut != "" {
		rec = trace.New()
	}
	tbl, bench, err := experiments.WarmupExperiment(model, batch, rec)
	if err != nil {
		return err
	}
	if err := show(tbl, nil); err != nil {
		return err
	}
	if out != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nbench payload written to %s\n", out)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open in ui.perfetto.dev)\n", traceOut)
	}
	return nil
}

// runOverload runs the overload-protection comparison across every device
// profile, writes the bench JSON to out, and with traceOut exports the first
// device's brownout-arm timeline (breaker state and pressure counters).
func runOverload(model string, batch int, quick bool, out, traceOut string) error {
	cfg := serving.OverloadConfig{Model: model, Batch: batch, Quick: quick}
	var rec *trace.Recorder
	if traceOut != "" {
		rec = trace.New()
		cfg.Rec = rec
	}
	tbl, bench, err := serving.Overload(cfg)
	if err != nil {
		return err
	}
	if err := show(tbl, nil); err != nil {
		return err
	}
	if out != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nbench payload written to %s\n", out)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open in ui.perfetto.dev)\n", traceOut)
	}
	return nil
}

// runCacheImage runs the cache-image fleet experiment across every device
// profile — TTFI versus pre-distribution coverage plus a chaos arm — writes
// the bench JSON to out, and with traceOut exports the first device's chaos
// timeline (attach and pull counters).
func runCacheImage(model string, batch int, quick bool, out, traceOut string) error {
	cfg := serving.CacheImageConfig{Model: model, Batch: batch, Quick: quick}
	var rec *trace.Recorder
	if traceOut != "" {
		rec = trace.New()
		cfg.Rec = rec
	}
	tbl, bench, err := serving.CacheImage(cfg)
	if err != nil {
		return err
	}
	if err := show(tbl, nil); err != nil {
		return err
	}
	if out != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nbench payload written to %s\n", out)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open in ui.perfetto.dev)\n", traceOut)
	}
	return nil
}

// runPlacement runs the placement-policy × cache-peering comparison on
// heterogeneous four-GPU fleets across every device profile, writes the
// bench JSON to out, and with traceOut exports the first fleet's
// affinity+peering timeline (per-GPU residency gauges, peer-fetch instants
// and TTFI counters).
func runPlacement(models []string, batch int, quick bool, out, traceOut string) error {
	cfg := serving.PlacementConfig{Models: models, Batch: batch, Quick: quick}
	var rec *trace.Recorder
	if traceOut != "" {
		rec = trace.New()
		cfg.Rec = rec
	}
	tbl, bench, err := serving.Placement(cfg)
	if err != nil {
		return err
	}
	if err := show(tbl, nil); err != nil {
		return err
	}
	if out != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nbench payload written to %s\n", out)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open in ui.perfetto.dev)\n", traceOut)
	}
	return nil
}

// runValidateTrace checks a Chrome trace JSON file's structural invariants
// and prints its summary.
func runValidateTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sum, err := trace.ValidateChrome(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: OK — %d events (%d spans, %d counter series) on %d tracks %v, %.2fms span\n",
		path, sum.Events, sum.Spans, sum.Counters, len(sum.Tracks), sum.Tracks, sum.MaxTs/1e3)
	return nil
}

// convOnly filters the selection to the convolution-dominated models (the
// cache-statistics experiments omit transformers, as the paper does).
func convOnly(models []string) []string {
	conv := map[string]bool{}
	for _, m := range experiments.ConvModelAbbrs() {
		conv[m] = true
	}
	var out []string
	for _, m := range models {
		if conv[m] {
			out = append(out, m)
		}
	}
	return out
}

var formatCSV bool

func show(tbl *experiments.Table, err error) error {
	if err != nil {
		return err
	}
	if formatCSV {
		fmt.Printf("# %s — %s\n%s\n", tbl.ID, tbl.Title, tbl.CSV())
		return nil
	}
	fmt.Println(tbl)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paskbench:", err)
	os.Exit(1)
}
