// Command modelzoo inspects the twelve Table-I models: structural summary,
// lowering statistics (instructions, distinct primitive problems, code
// objects per plan), and ONNX-JSON export.
//
// Usage:
//
//	modelzoo                       # summary table
//	modelzoo -model res -plan      # per-instruction lowering of one model
//	modelzoo -model res -export f  # write the graph as JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"pask/internal/device"
	"pask/internal/graphx"
	"pask/internal/metrics"
	"pask/internal/miopen"
	"pask/internal/onnx/zoo"
)

func main() {
	model := flag.String("model", "", "zoo model abbreviation (empty: all)")
	batch := flag.Int("batch", 1, "batch size")
	plan := flag.Bool("plan", false, "print the lowered instruction plan")
	export := flag.String("export", "", "write the ONNX-JSON graph to this file")
	flag.Parse()

	if *model == "" {
		summary(*batch)
		return
	}
	spec, err := zoo.ByAbbr(*model)
	if err != nil {
		fatal(err)
	}
	g, err := spec.Build(*batch)
	if err != nil {
		fatal(err)
	}
	if *export != "" {
		data, err := g.ToJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*export, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *export, len(data))
		return
	}
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	m, err := graphx.Compile(g, miopen.NewPerfDB(reg), graphx.CompileOptions{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s (%s): %d graph ops -> %d instructions, %d primitive (%d distinct problems), %.1f MB parameters\n",
		spec.Name, spec.Type, g.NumOps(), m.NumInstructions(), m.PrimitiveCount(),
		m.DistinctPrimitiveProblems(), float64(m.ParamBytes)/1e6)
	if !*plan {
		return
	}
	fmt.Println()
	for i := range m.Instrs {
		in := &m.Instrs[i]
		switch in.Kind {
		case graphx.KindPrimitive:
			fmt.Printf("%3d  %-10s %-22s %s[%s]\n", i, in.Kind, in.Name, in.SolutionID, in.Binding)
		case graphx.KindGemm:
			fmt.Printf("%3d  %-10s %-22s %s\n", i, in.Kind, in.Name, in.Gemm.Key())
		case graphx.KindTransform:
			fmt.Printf("%3d  %-10s %-22s %s\n", i, in.Kind, in.Name, in.XformPath)
		default:
			fmt.Printf("%3d  %-10s %-22s builtin_%s\n", i, in.Kind, in.Name, in.Builtin)
		}
	}
}

func summary(batch int) {
	reg := miopen.NewRegistry(miopen.NewCtx(device.MI100()))
	headers := []string{"abbr", "model", "type", "ops", "instrs", "primitive", "distinct", "objects", "params"}
	var rows [][]string
	for _, spec := range zoo.Models() {
		g, err := spec.Build(batch)
		if err != nil {
			fatal(err)
		}
		m, err := graphx.Compile(g, miopen.NewPerfDB(reg), graphx.CompileOptions{})
		if err != nil {
			fatal(err)
		}
		objs, err := m.DistinctObjects(reg)
		if err != nil {
			fatal(err)
		}
		rows = append(rows, []string{
			spec.Abbr, spec.Name, spec.Type,
			fmt.Sprintf("%d", g.NumOps()),
			fmt.Sprintf("%d", m.NumInstructions()),
			fmt.Sprintf("%d", m.PrimitiveCount()),
			fmt.Sprintf("%d", m.DistinctPrimitiveProblems()),
			fmt.Sprintf("%d", len(objs)),
			fmt.Sprintf("%.0fMB", float64(m.ParamBytes)/1e6),
		})
	}
	fmt.Print(metrics.FormatTable(headers, rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "modelzoo:", err)
	os.Exit(1)
}
