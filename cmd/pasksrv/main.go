// Command pasksrv serves the simulated PASK stack over HTTP: a what-if
// service for cold-start planning.
//
//	pasksrv -addr :8080
//	curl 'localhost:8080/coldstart?model=res&scheme=PaSK&compare=1'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"pask/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	fmt.Printf("pasksrv listening on %s\n", *addr)
	fmt.Println("endpoints: /models /devices /schemes /coldstart?model=&scheme=&device=&batch=&compare=1")
	log.Fatal(http.ListenAndServe(*addr, httpapi.New()))
}
