// Command pasksrv serves the simulated PASK stack over HTTP: a what-if
// service for cold-start planning.
//
//	pasksrv -addr :8080
//	curl -X POST localhost:8080/v1/coldstart -d '{"model":"res","compare":true}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"pask/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	fmt.Printf("pasksrv listening on %s\n", *addr)
	fmt.Println("endpoints:")
	fmt.Println("  GET  /v1/models /v1/devices /v1/schemes")
	fmt.Println("  POST /v1/coldstart /v1/serve   (JSON body)")
	fmt.Println("  GET  /v1/experiments           (experiment menu)")
	fmt.Println("  POST /v1/experiments/{name}    (run any experiment; JSON body)")
	fmt.Println("  GET  /v1/runs/{id}/trace   (Chrome trace of a past run)")
	fmt.Println("  GET  /metrics              (Prometheus text format)")
	fmt.Println("  deprecated: GET /models /devices /schemes /coldstart /serve /multitenant;")
	fmt.Println("              POST /v1/multitenant /v1/overload (use /v1/experiments/{name})")
	log.Fatal(http.ListenAndServe(*addr, httpapi.New()))
}
