// Command pasksrv serves the simulated PASK stack over HTTP: a what-if
// service for cold-start planning.
//
//	pasksrv -addr :8080
//	curl -X POST localhost:8080/v1/coldstart -d '{"model":"res","compare":true}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"pask/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	fmt.Printf("pasksrv listening on %s\n", *addr)
	fmt.Println("endpoints:")
	fmt.Println("  GET  /v1/models /v1/devices /v1/schemes")
	fmt.Println("  POST /v1/coldstart /v1/serve /v1/multitenant /v1/overload   (JSON body)")
	fmt.Println("  GET  /v1/runs/{id}/trace   (Chrome trace of a past run)")
	fmt.Println("  GET  /metrics              (Prometheus text format)")
	fmt.Println("  deprecated GET aliases: /models /devices /schemes /coldstart /serve /multitenant")
	log.Fatal(http.ListenAndServe(*addr, httpapi.New()))
}
