#!/bin/sh
# check_pkgdoc.sh — CI gate for the godoc contract: every internal package
# must carry a package comment, and that comment must anchor the package to
# the source paper — a section reference (§III-A/B/C, §IV–§VI), a figure or
# table, or an explicit substitution rationale ("stand-in", "analogue",
# "paper", DESIGN.md pointer) — and must carry an explicit
# "// Paper anchor: ..." line naming the section, figure or beyond-paper
# rationale in one greppable place. Commands under cmd/ must carry a
# "// Command <name>" doc comment (no paper anchor required — they are
# drivers, not models). Run from the repository root:
#
#   ./scripts/check_pkgdoc.sh
#
# Exits non-zero listing every package that fails either check.
set -u

fail=0

for dir in $(find internal cmd -type d | sort); do
    # Skip directories without non-test Go files (testdata, empty parents).
    ls "$dir"/*.go >/dev/null 2>&1 || continue
    src=""
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        if grep -q '^// \(Package\|Command\) ' "$f"; then
            src="$f"
            break
        fi
    done
    if [ -z "$src" ]; then
        echo "FAIL $dir: no package comment (add a doc.go)"
        fail=1
        continue
    fi
    case "$dir" in
    cmd/*)
        # Commands need the doc comment but not the paper anchor.
        continue
        ;;
    esac
    # The comment is the contiguous // block ending at the package clause.
    doc=$(awk '/^\/\//{buf = buf $0 "\n"; next} /^package /{printf "%s", buf; exit} {buf = ""}' "$src")
    if ! printf '%s' "$doc" | grep -Eq '§|[Pp]aper|Fig[ .]|Table I|stand-in|analogue|DESIGN\.md'; then
        echo "FAIL $dir ($src): package comment cites no paper section or substitution rationale"
        fail=1
    fi
    if ! printf '%s' "$doc" | grep -q '^// Paper anchor: '; then
        echo "FAIL $dir ($src): package comment has no '// Paper anchor: ...' line"
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "pkgdoc: all packages documented, internal ones anchored to the paper"
fi
exit "$fail"
