#!/bin/sh
# benchstat_gate.sh — regression gate for the host-pipeline micro-benchmarks.
#
# Compares a `go test -bench` output file against the committed baseline
# BENCH_host.json and fails on regressions beyond the baseline's tolerance
# (default 15%). Self-contained POSIX sh + awk: no benchstat binary or jq
# required, so the gate runs anywhere the repo builds.
#
# Usage:
#   go test -run '^$' -bench . -benchmem -benchtime=2000x -count=3 \
#       ./internal/core/ ./internal/backend/ ./internal/codeobj/ | tee bench.txt
#   ./scripts/benchstat_gate.sh bench.txt              # gate against BENCH_host.json
#   ./scripts/benchstat_gate.sh -update bench.txt      # regenerate the baseline
#
# Gating rules (see docs/PERFORMANCE.md):
#   - allocs/op is gated unconditionally: allocation counts are
#     hardware-independent, so any increase beyond tolerance fails even on a
#     different machine.
#   - ns/op is gated only when the running host matches the baseline's
#     recorded host fingerprint; wall-clock time on foreign hardware is
#     noise, not signal. On matching hosts a regression must also exceed
#     an absolute 50ns floor: on the handful-of-ns fast paths a few ns of
#     scheduler jitter clears 15% without meaning anything, and the alloc
#     gate still catches any real change there (going interface-boxed or
#     allocating adds allocs before it adds 50ns).
#   - With -count=N the minimum across runs is compared, which discards
#     scheduler and amortized-growth noise.
set -u

baseline="BENCH_host.json"
update=0
if [ "${1:-}" = "-update" ]; then
    update=1
    shift
fi
if [ $# -lt 1 ]; then
    echo "usage: $0 [-update] bench.txt [baseline.json]" >&2
    exit 2
fi
bench="$1"
[ $# -ge 2 ] && baseline="$2"
if [ ! -f "$bench" ]; then
    echo "benchstat_gate: bench output $bench not found" >&2
    exit 2
fi

cpu=$(awk -F: '/model name/{sub(/^[ \t]+/, "", $2); print $2; exit}' /proc/cpuinfo 2>/dev/null)
[ -n "$cpu" ] || cpu="unknown"
host="$(go env GOOS)/$(go env GOARCH) $cpu"

# reduce: fold the bench output into "name min_ns min_allocs" lines, taking
# the minimum over -count repetitions and stripping the -GOMAXPROCS suffix.
reduce() {
    awk '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            ns = ""; allocs = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op") ns = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            if (ns == "" || allocs == "") next
            if (!(name in minns) || ns + 0 < minns[name]) minns[name] = ns + 0
            if (!(name in mina) || allocs + 0 < mina[name]) mina[name] = allocs + 0
            if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
        }
        END {
            for (i = 1; i <= n; i++) {
                name = order[i]
                printf "%s %g %g\n", name, minns[name], mina[name]
            }
        }
    ' "$1"
}

if [ "$update" -eq 1 ]; then
    reduce "$bench" | awk -v host="$host" '
        BEGIN {
            printf "{\n  \"schema\": 1,\n"
            printf "  \"host\": \"%s\",\n", host
            printf "  \"tolerance_pct\": 15,\n"
            printf "  \"benchmarks\": [\n"
        }
        {
            if (NR > 1) printf ",\n"
            printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", $1, $2, $3
        }
        END { printf "\n  ]\n}\n" }
    ' > "$baseline"
    n=$(reduce "$bench" | wc -l)
    echo "benchstat_gate: wrote $baseline ($n benchmarks, host: $host)"
    exit 0
fi

if [ ! -f "$baseline" ]; then
    echo "benchstat_gate: baseline $baseline not found (run with -update to create)" >&2
    exit 2
fi

base_host=$(sed -n 's/^ *"host": "\(.*\)",*$/\1/p' "$baseline" | head -n 1)
tol=$(sed -n 's/^ *"tolerance_pct": \([0-9.]*\),*$/\1/p' "$baseline" | head -n 1)
[ -n "$tol" ] || tol=15
gate_ns=1
if [ "$base_host" != "$host" ]; then
    gate_ns=0
    echo "benchstat_gate: host differs from baseline host — ns/op gate skipped, allocs/op still enforced"
    echo "  baseline: $base_host"
    echo "  current:  $host"
fi

reduce "$bench" > /tmp/benchgate.$$
trap 'rm -f /tmp/benchgate.$$' EXIT

# One baseline entry per line by construction of -update above.
sed -n 's/^ *{"name": "\([^"]*\)", "ns_per_op": \([0-9.e+-]*\), "allocs_per_op": \([0-9.e+-]*\)}.*$/\1 \2 \3/p' "$baseline" |
awk -v tol="$tol" -v gate_ns="$gate_ns" -v runfile="/tmp/benchgate.$$" '
    BEGIN {
        while ((getline line < runfile) > 0) {
            split(line, f, " ")
            runns[f[1]] = f[2] + 0
            runa[f[1]] = f[3] + 0
            inrun[f[1]] = 1
        }
        fail = 0
    }
    {
        name = $1; bns = $2 + 0; ba = $3 + 0
        if (!(name in inrun)) {
            printf "FAIL %s: benchmark missing from run output\n", name
            fail = 1
            next
        }
        limit_a = ba * (1 + tol / 100)
        if (runa[name] > limit_a) {
            printf "FAIL %s: allocs/op %g exceeds baseline %g by more than %g%%\n", name, runa[name], ba, tol
            fail = 1
        }
        if (gate_ns && runns[name] > bns * (1 + tol / 100) && runns[name] - bns > 50) {
            printf "FAIL %s: ns/op %g exceeds baseline %g by more than %g%%\n", name, runns[name], bns, tol
            fail = 1
        }
        checked++
    }
    END {
        if (fail) exit 1
        printf "benchstat_gate: %d benchmarks within %g%% of baseline (ns gate: %s)\n",
            checked, tol, gate_ns ? "on" : "off (foreign host)"
    }
'
