module pask

go 1.22
